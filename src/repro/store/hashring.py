"""Consistent hashing and the paper's chunk-placement rule.

Memcached clients use consistent hashing (libmemcached's ketama) to pick
the server owning a key.  The paper's erasure designs then place the
``N = K + M`` chunks on "the originally designated server and the N-1
following servers in the Memcached server cluster list" (Section IV-A) —
list order, not ring order — which this module implements as
:meth:`HashRing.placement`.

Two interchangeable ring representations back the same API:

- **vectorized** (numpy present): the sorted virtual points live in one
  contiguous ``uint64`` array with a parallel ``int32`` owner-index
  array; lookups are ``searchsorted``, membership changes are array
  concatenation/boolean masking plus one ``lexsort``, and
  :meth:`HashRing.warm` resolves whole key batches in a single
  ``searchsorted`` call (the migration planner's path).
- **pure Python** (fallback): the original list-of-ints + ``bisect``
  implementation, kept behaviorally identical so a numpy-less install
  places every key on exactly the same servers.

Rings are immutable, so each instance carries its own **placement
cache** (key → primary server index).  Because a membership change
always produces a *new* ring object, the cache is epoch-keyed for free:
an epoch transition swaps in a fresh ring whose cache starts cold, and
stale entries die with the old ring.  The request path, migration
planner, and repair manager therefore resolve each (ring, key) pair's
md5 + ring search exactly once.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence

try:  # optional acceleration (installed via the ``repro[fast]`` extra)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

_HAS_NUMPY = _np is not None

#: Keys memoized per ring before the placement cache resets.  Bounds the
#: memory of very long runs; a reset only costs re-resolving hot keys.
PLACEMENT_CACHE_LIMIT = 1 << 20

#: Per-(server, points) virtual-point memo shared by every ring.  Server
#: names recur across epochs and rebuilds, so the md5 work per server is
#: paid once per process, not once per ring construction.
_POINT_MEMO: Dict[tuple, object] = {}
_POINT_MEMO_LIMIT = 4096


def stable_hash(data: str) -> int:
    """Deterministic 64-bit hash (md5-based, like ketama) — never Python's
    seeded ``hash()``."""
    digest = hashlib.md5(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def _server_points(name: str, points_per_server: int) -> List[tuple]:
    """The sorted (hash, owner) virtual points one server contributes."""
    memo_key = (name, points_per_server, "py")
    cached = _POINT_MEMO.get(memo_key)
    if cached is None:
        cached = sorted(
            (stable_hash("%s#%d" % (name, replica)), name)
            for replica in range(points_per_server)
        )
        if len(_POINT_MEMO) >= _POINT_MEMO_LIMIT:
            _POINT_MEMO.clear()
        _POINT_MEMO[memo_key] = cached
    return cached


def _server_point_array(name: str, points_per_server: int):
    """One server's virtual points as a sorted ``uint64`` array."""
    memo_key = (name, points_per_server, "np")
    cached = _POINT_MEMO.get(memo_key)
    if cached is None:
        cached = _np.fromiter(
            (
                stable_hash("%s#%d" % (name, replica))
                for replica in range(points_per_server)
            ),
            dtype=_np.uint64,
            count=points_per_server,
        )
        cached.sort()
        if len(_POINT_MEMO) >= _POINT_MEMO_LIMIT:
            _POINT_MEMO.clear()
        _POINT_MEMO[memo_key] = cached
    return cached


class HashRing:
    """Ketama-style consistent hash ring over a fixed server list."""

    def __init__(
        self,
        servers: Sequence[str],
        points_per_server: int = 100,
        vectorized: Optional[bool] = None,
    ):
        if not servers:
            raise ValueError("hash ring needs at least one server")
        if len(set(servers)) != len(servers):
            raise ValueError("duplicate server names")
        self.servers: List[str] = list(servers)
        self.points_per_server = points_per_server
        self._index = {name: i for i, name in enumerate(self.servers)}
        self._vectorized = _HAS_NUMPY if vectorized is None else vectorized
        if self._vectorized and not _HAS_NUMPY:
            raise ValueError("vectorized ring requested but numpy is absent")
        #: key -> primary *server index*; epoch-keyed by construction
        #: (each membership change builds a new ring with a cold cache).
        self._placement_cache: Dict[str, int] = {}
        if self._vectorized:
            self._build_arrays()
        else:
            self._ring: List[int] = []
            self._owners: List[str] = []
            points = []
            for name in self.servers:
                points.extend(_server_points(name, points_per_server))
            points.sort()
            for point, name in points:
                self._ring.append(point)
                self._owners.append(name)

    # -- vectorized internals ----------------------------------------------
    def _build_arrays(self) -> None:
        pps = self.points_per_server
        count = len(self.servers) * pps
        points = _np.empty(count, dtype=_np.uint64)
        owners = _np.empty(count, dtype=_np.int32)
        for idx, name in enumerate(self.servers):
            start = idx * pps
            points[start : start + pps] = _server_point_array(name, pps)
            owners[start : start + pps] = idx
        self._sort_arrays(points, owners)

    def _sort_arrays(self, points, owners) -> None:
        # Sort by (hash, owner name): the same tie-break order the pure
        # merge produces, so vectorized and fallback rings are identical
        # even in the astronomically unlikely event of a point collision.
        ranks = self._name_ranks()
        order = _np.lexsort((ranks[owners], points))
        self._points = points[order]
        self._owner_idx = owners[order]

    def _name_ranks(self):
        ranks = _np.empty(len(self.servers), dtype=_np.int32)
        for rank, idx in enumerate(
            sorted(range(len(self.servers)), key=self.servers.__getitem__)
        ):
            ranks[idx] = rank
        return ranks

    # -- incremental membership -------------------------------------------
    def with_server(self, name: str) -> "HashRing":
        """A new ring with ``name`` appended to the server list.

        Reuses this ring's sorted point arrays — only the joining
        server's ``points_per_server`` points are hashed and merged, so a
        membership change costs O(P) instead of O(N * P) rehashing.
        Consistent hashing guarantees only ~1/(N+1) of keys change owner.
        """
        if name in self._index:
            raise ValueError("server %r already on the ring" % name)
        new = object.__new__(HashRing)
        new.servers = self.servers + [name]
        new.points_per_server = self.points_per_server
        new._index = dict(self._index)
        new._index[name] = len(self.servers)
        new._vectorized = self._vectorized
        new._placement_cache = {}
        if self._vectorized:
            fresh = _server_point_array(name, self.points_per_server)
            points = _np.concatenate([self._points, fresh])
            owners = _np.concatenate(
                [
                    self._owner_idx,
                    _np.full(len(fresh), len(self.servers), dtype=_np.int32),
                ]
            )
            new._sort_arrays(points, owners)
            return new
        fresh = _server_points(name, self.points_per_server)
        ring: List[int] = []
        owners_list: List[str] = []
        i = 0
        j = 0
        old_ring, old_owners = self._ring, self._owners
        # merge keeps the exact (hash, name) tie-break order a full
        # rebuild would produce, so with_server == HashRing(servers+[x])
        while i < len(old_ring) and j < len(fresh):
            if (old_ring[i], old_owners[i]) <= fresh[j]:
                ring.append(old_ring[i])
                owners_list.append(old_owners[i])
                i += 1
            else:
                ring.append(fresh[j][0])
                owners_list.append(fresh[j][1])
                j += 1
        while i < len(old_ring):
            ring.append(old_ring[i])
            owners_list.append(old_owners[i])
            i += 1
        for point, owner in fresh[j:]:
            ring.append(point)
            owners_list.append(owner)
        new._ring = ring
        new._owners = owners_list
        return new

    def without_server(self, name: str) -> "HashRing":
        """A new ring with ``name`` removed from the server list.

        Filters the departing server's points out of the shared sorted
        arrays; no hashing at all.  Keys it owned redistribute across the
        survivors (~1/N of the key space moves).
        """
        if name not in self._index:
            raise ValueError("server %r not on the ring" % name)
        if len(self.servers) == 1:
            raise ValueError("cannot remove the last server")
        new = object.__new__(HashRing)
        new.servers = [s for s in self.servers if s != name]
        new.points_per_server = self.points_per_server
        new._index = {s: i for i, s in enumerate(new.servers)}
        new._vectorized = self._vectorized
        new._placement_cache = {}
        if self._vectorized:
            removed = self._index[name]
            keep = self._owner_idx != removed
            owners = self._owner_idx[keep]
            # owner indices above the removed slot shift down by one
            new._points = self._points[keep]
            new._owner_idx = owners - (owners > removed)
            return new
        new._ring = []
        new._owners = []
        for point, owner in zip(self._ring, self._owners):
            if owner != name:
                new._ring.append(point)
                new._owners.append(owner)
        return new

    # -- lookups -----------------------------------------------------------
    def _locate(self, key: str) -> int:
        """Primary *server index* for ``key`` (uncached)."""
        h = stable_hash(key)
        if self._vectorized:
            points = self._points
            # wrap in a numpy scalar: searchsorted against a raw Python
            # int pays a ~60us uint64-conversion penalty per call
            idx = int(points.searchsorted(_np.uint64(h), side="right"))
            if idx == len(points):
                idx = 0
            return int(self._owner_idx[idx])
        idx = bisect.bisect(self._ring, h)
        if idx == len(self._ring):
            idx = 0
        return self._index[self._owners[idx]]

    def primary_index(self, key: str) -> int:
        """Index (into :attr:`servers`) of the server owning ``key``."""
        cache = self._placement_cache
        start = cache.get(key)
        if start is None:
            if len(cache) >= PLACEMENT_CACHE_LIMIT:
                cache.clear()
            start = self._locate(key)
            cache[key] = start
        return start

    def primary(self, key: str) -> str:
        """The server that owns ``key`` under consistent hashing."""
        return self.servers[self.primary_index(key)]

    def warm(self, keys: Iterable[str]) -> None:
        """Batch-resolve ``keys`` into the placement cache.

        With numpy present this is one vectorized ``searchsorted`` over
        all missing keys — the planner and repair manager call it before
        their per-key walks so the walk itself is pure dict hits.
        """
        cache = self._placement_cache
        missing = [key for key in keys if key not in cache]
        if not missing:
            return
        if len(cache) + len(missing) > PLACEMENT_CACHE_LIMIT:
            cache.clear()
        if self._vectorized:
            hashes = _np.fromiter(
                (stable_hash(key) for key in missing),
                dtype=_np.uint64,
                count=len(missing),
            )
            idx = self._points.searchsorted(hashes, side="right")
            idx[idx == len(self._points)] = 0
            owners = self._owner_idx[idx]
            for key, owner in zip(missing, owners.tolist()):
                cache[key] = owner
        else:
            locate = self._locate
            for key in missing:
                cache[key] = locate(key)

    def placement(self, key: str, count: int) -> List[str]:
        """The primary plus the next ``count - 1`` servers in list order.

        This is the paper's placement for both replicas and erasure-coded
        chunks; it requires ``count <= len(servers)`` distinct nodes.
        """
        if count < 1:
            raise ValueError("placement count must be >= 1")
        servers = self.servers
        num = len(servers)
        if count > num:
            raise ValueError(
                "placement of %d needs at least that many servers (have %d)"
                % (count, num)
            )
        start = self.primary_index(key)
        if start + count <= num:
            return servers[start : start + count]
        return [servers[(start + offset) % num] for offset in range(count)]

    def next_alive(self, key: str, dead: Sequence[str]) -> Optional[str]:
        """First live server in placement order — replication failover."""
        dead_set = set(dead)
        for name in self.placement(key, len(self.servers)):
            if name not in dead_set:
                return name
        return None
