"""The Memcached server process.

Each server owns a slab cache, a pool of worker threads (a simulated
resource — CPU phases contend for it), and a dispatcher that drains the
network inbox.  Built-in handlers implement ``set``/``get``/``delete``;
the server-side erasure designs (Era-SE-*) register additional op handlers
via :meth:`MemcachedServer.register_handler` and use the server's embedded
request path (its ARPE, in the paper's terms) to talk to peer servers.

A failed server loses its endpoint *and* its memory contents — Memcached
is volatile, which is the entire premise of the paper.
"""

from __future__ import annotations

import itertools
import zlib
from collections import OrderedDict
from typing import Any, Callable, Dict, Generator, Optional

from repro.common.payload import Payload
from repro.ec.cost_model import CodingCostModel
from repro.network.fabric import Fabric, Message
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, NULL_TRACER
from repro.overload.admission import (
    LANE_BG,
    LANE_FG,
    SHED,
    AdmissionController,
)
from repro.simulation import Event, Resource, Simulator
from repro.store import protocol
from repro.store.plan import ServerPlan
from repro.store.protocol import PendingTable, Request, Response
from repro.store.slab import SlabCache

#: Base CPU cost of parsing a request and probing the hash table.
REQUEST_PARSE_CPU = 0.5e-6
#: CPU cost per payload byte touched (copy into/out of slab memory).
COPY_CPU_PER_BYTE = 2.0e-11
#: CPU cost per byte of checksum verification (hardware CRC32C rate).
CHECKSUM_CPU_PER_BYTE = 5.0e-11

#: Bound on the remembered-cancellation set: cancels for requests that
#: never arrive (already served, lost on a dead link) age out FIFO.
CANCEL_SET_LIMIT = 1024

Handler = Callable[["MemcachedServer", Request], Generator]


class RequestCancelled(Exception):
    """The client cancelled this request; abort service without replying."""


class MemcachedServer:
    """One RDMA-Memcached server instance in the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        name: str,
        memory_limit: int,
        worker_threads: int = 8,
        cost_model: Optional[CodingCostModel] = None,
        verify_on_read: bool = True,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics or MetricsRegistry()
        self.memory_limit = memory_limit
        # Flyweight state: the slab cache (~40 slab classes) and the
        # queue-depth histogram materialize on first touch, so the
        # thousands of servers in a scale soak that never store a byte or
        # queue a request cost almost nothing to build or keep around.
        self._cache: Optional[SlabCache] = None
        self._queue_depth_hist = None
        self.endpoint = fabric.add_node(name)
        #: verify stored checksums on every Get (detects bit rot; a
        #: corrupt item is reported so the resilience layer can recover
        #: it from replicas or parity chunks)
        self.verify_on_read = verify_on_read
        self.corruption_detected = 0
        self.workers = Resource(sim, worker_threads)
        self.cost_model = cost_model or CodingCostModel()
        self.cpu_speed = fabric.profile.cpu_speed_factor
        #: multiplier applied to every CPU charge — a chaos engine models
        #: a gray "slow node" by raising it above 1.0 for a while.
        self.cpu_throttle = 1.0
        #: optional deadline for this server's requests to peer servers
        #: (the embedded ARPE); ``None`` keeps peers waiting forever.
        self.peer_timeout = None
        self.handlers: Dict[str, Handler] = {}
        self.pending = PendingTable(sim)
        self._req_seq = itertools.count(1)
        #: newest membership epoch this server has observed (stamped into
        #: heartbeat replies; requests carrying an older epoch are counted
        #: so migration lag is visible in the metrics)
        self.epoch = 0
        self.alive = True
        self.requests_handled = 0
        self.peer_requests_sent = 0
        #: optional admission controller (see :meth:`enable_admission`);
        #: ``None`` keeps the legacy queue-forever behavior.
        self.admission: Optional[AdmissionController] = None
        #: cancelled-request keys ``(reply_to, op, key)`` → bounded FIFO
        self._cancelled: "OrderedDict[tuple, bool]" = OrderedDict()
        #: optional callback(key, value_len) invoked after a successful
        #: store — the Boldio burst buffer hooks its async flusher here.
        self.on_store = None
        # Plan-resolved hot-path switches.  Standalone servers keep every
        # protection on (the historical behavior); a cluster with a
        # Features config narrows them via apply_plan().
        self._cancellable = True
        self._check_stale = True
        self._track_epoch = True
        self._stamp_crc = True
        self._service_name = "%s.req" % name
        self.endpoint.on_message = self._on_message

    @property
    def cache(self) -> SlabCache:
        """The slab cache, materialized on first use."""
        cache = self._cache
        if cache is None:
            cache = self._cache = SlabCache(
                self.memory_limit,
                metrics=self.metrics,
                metric_prefix="slab.%s" % self.name,
            )
        return cache

    @property
    def _queue_depth(self):
        """The queue-depth histogram, materialized on first contention."""
        hist = self._queue_depth_hist
        if hist is None:
            hist = self._queue_depth_hist = self.metrics.histogram(
                "server.%s.queue_depth" % self.name
            )
        return hist

    def apply_plan(self, plan: ServerPlan) -> None:
        """Adopt a compiled :class:`ServerPlan` (cluster feature recompile).

        Resolves, once, everything the request loop would otherwise probe
        per message: admission control, cancel bookkeeping, CRC
        stamp/verify, the stale-write guard and epoch tracking.
        """
        if plan.admission is not None:
            if self.admission is None:
                self.enable_admission(
                    max_queue=plan.admission.max_queue,
                    bg_max_queue=plan.admission.bg_max_queue,
                    sojourn_deadline=plan.admission.sojourn_deadline,
                )
        else:
            self.admission = None
        self.verify_on_read = plan.verify_on_read
        self._stamp_crc = plan.integrity
        self._cancellable = plan.cancellable
        self._check_stale = plan.check_stale
        self._track_epoch = plan.track_epoch

    # -- lifecycle ----------------------------------------------------------
    def fail(self) -> None:
        """Crash the node: unreachable, and DRAM contents are gone."""
        self.alive = False
        self.endpoint.fail()
        if self._cache is not None:  # nothing stored -> nothing to lose
            self._cache.wipe()

    def recover(self) -> None:
        """Bring the node back empty (cold restart)."""
        self.alive = True
        self.endpoint.recover()

    def corrupt_item(self, key: str, byte_offset: int = 0) -> bool:
        """Test hook: flip one byte of a stored item (simulated bit rot)."""
        item = self.cache.peek(key)
        if item is None or item.data is None:
            return False
        data = bytearray(item.data)
        data[byte_offset % len(data)] ^= 0xFF
        item.data = bytes(data)
        return True

    # -- extension hook -------------------------------------------------------
    def register_handler(self, op: str, handler: Handler) -> None:
        """Attach a handler for a scheme-specific op (e.g. ``se_set``)."""
        if op in self.handlers:
            raise ValueError("handler for op %r already registered" % op)
        self.handlers[op] = handler

    def unregister_handler(self, op: str) -> None:
        """Detach a previously registered op handler (no-op when absent)."""
        self.handlers.pop(op, None)

    # -- overload protection --------------------------------------------------
    def enable_admission(
        self,
        max_queue: int = 64,
        bg_max_queue: int = 16,
        sojourn_deadline: float = 0.02,
        slots: Optional[int] = None,
    ) -> AdmissionController:
        """Turn on bounded-queue admission control for this server.

        ``slots`` defaults to the worker-thread count, so the admission
        controller becomes the *only* queue in front of the workers: an
        admitted request always finds an uncontended worker.
        """
        self.admission = AdmissionController(
            self.sim,
            slots=slots or self.workers.capacity,
            max_queue=max_queue,
            bg_max_queue=bg_max_queue,
            sojourn_deadline=sojourn_deadline,
            metrics=self.metrics,
            name=self.name,
            depth_histogram=self._queue_depth,
        )
        return self.admission

    def note_cancel(self, reply_to: str, op: str, key: str) -> None:
        """Remember a client's cancellation of ``(reply_to, op, key)``.

        Matching is by identity of the work, not req_id: the canceller
        (a hedged read's winner path, or a gather that already has k
        chunks) holds only the waiter event, whose req_id it cannot
        reach.  One remembered cancel absorbs exactly one request.
        """
        self.metrics.counter("server.cancels_received").inc()
        self._cancelled[(reply_to, op, key)] = True
        while len(self._cancelled) > CANCEL_SET_LIMIT:
            self._cancelled.popitem(last=False)

    def _consume_cancel(self, request: Request) -> bool:
        key = (request.reply_to, request.op, request.key)
        return self._cancelled.pop(key, False)

    # -- CPU accounting -------------------------------------------------------
    def cpu(
        self, seconds: float, request: Optional[Request] = None
    ) -> Generator:
        """Occupy one worker thread for ``seconds`` of compute.

        ``seconds`` must already reflect this cluster's CPU speed (the
        coding cost model is constructed with the profile's speed factor);
        this method only adds worker-thread contention.

        Passing the ``request`` being served makes the phase cancellable:
        if the client cancelled it (hedge loser, satisfied gather), the
        phase raises :class:`RequestCancelled` *after* securing the
        worker — so the release in the finally block always balances —
        and before burning the compute.
        """
        if seconds <= 0:
            return
        seconds *= self.cpu_throttle
        req = self.workers.request()
        if not req.processed:  # uncontended grants need no suspension
            self._queue_depth.observe(self.workers.queued)
            yield req
        try:
            if (
                request is not None
                and self._cancellable
                and self._consume_cancel(request)
            ):
                raise RequestCancelled(request.key)
            yield self.sim.timeout(seconds)
        finally:
            contended = self.workers.queued > 0
            self.workers.release(req)
            if contended:
                self._queue_depth.observe(self.workers.queued)

    def _receive_cpu_cost(self, message_size: int) -> float:
        """Per-message host CPU implied by the transport (IPoIB only)."""
        profile = self.fabric.profile
        return (
            profile.recv_cpu_per_message
            + message_size * profile.recv_cpu_per_byte
        )

    def next_req_id(self) -> int:
        """Allocate a request id (shared by KV and Lustre traffic)."""
        return next(self._req_seq)

    # -- embedded client path (the server's ARPE) ------------------------------
    def send_request(
        self,
        dst: str,
        op: str,
        key: str,
        value: Optional[Payload] = None,
        meta: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Event:
        """Issue a non-blocking request to a peer server.

        Returns an event that fires with the :class:`Response`, or fails
        with ``NodeUnreachableError`` if the peer is down.  ``timeout``
        overrides this server's :attr:`peer_timeout` for one request —
        the SWIM prober arms much tighter deadlines than data transfers.
        """
        request = Request(
            op=op,
            key=key,
            req_id=next(self._req_seq),
            reply_to=self.name,
            value=value,
            # peer callers hand over per-request dicts; metaless requests
            # share the EMPTY_META sentinel instead of allocating one each
            meta=meta,
        )
        self.peer_requests_sent += 1
        return protocol.issue_request(
            self.fabric,
            self.pending,
            request,
            dst,
            timeout=timeout if timeout is not None else self.peer_timeout,
        )

    # -- dispatch ---------------------------------------------------------
    def _on_message(self, message: Message) -> None:
        # Direct dispatch at delivery time (no inbox/dispatcher process).
        payload = message.payload
        if isinstance(payload, Response):
            if (
                self._stamp_crc
                and payload.ok
                and payload.value is not None
                and payload.value.has_data
            ):
                # Same end-to-end integrity check the client performs:
                # a peer response mangled in flight (e.g. a chunk fetched
                # during server-side decode) must surface as a typed
                # CORRUPT failure, never as silently accepted bytes.
                expected = payload.meta.get("crc")
                if (
                    expected is not None
                    and payload.value.checksum() != expected
                ):
                    self.metrics.counter("server.corrupt_responses").inc()
                    # the corrupt original is discarded; its meta can be
                    # handed to the rewrap without a copy
                    payload = Response(
                        req_id=payload.req_id,
                        ok=False,
                        server=payload.server,
                        error=protocol.ERR_CORRUPT,
                        meta=payload.meta,
                    )
            self.pending.complete(payload)
        elif isinstance(payload, Request):
            if payload.op == "cancel":
                # Pure bookkeeping: no service process, no reply.
                self.note_cancel(
                    payload.reply_to,
                    payload.meta.get("op", "get"),
                    payload.key,
                )
                return
            self.sim.process(
                self._handle_request(payload, message.size),
                name=(
                    "%s.%s" % (self.name, payload.op)
                    if self.tracer.enabled
                    else self._service_name
                ),
            )

    def _handle_request(self, request: Request, message_size: int) -> Generator:
        self.requests_handled += 1
        cancellable = self._cancellable
        if cancellable and self._consume_cancel(request):
            # Cancelled before service even began (e.g. a retransmit of
            # a request whose original already satisfied the client).
            self.metrics.counter("server.cancelled_drops").inc()
            return
        admission = self.admission
        granted_at = self.sim.now
        if admission is not None:
            lane = LANE_BG if request.meta.get("lane") == "bg" else LANE_FG
            ticket = admission.offer(lane)
            if ticket is None:
                self._send_busy(request)
                return
            outcome = ticket.value if ticket.processed else (yield ticket)
            if outcome == SHED:
                self._send_busy(request)
                return
            granted_at = self.sim.now
            if cancellable and self._consume_cancel(request):
                # Cancelled while queued: the slot was granted an instant
                # ago and nothing ran yet, so hand it straight back.
                self.metrics.counter("server.cancelled_drops").inc()
                admission.release(0.0)
                return
        span = (
            self.tracer.span(
                self.name,
                "service:%s" % request.op,
                category="server-service",
                key=request.key,
            )
            if self.tracer.enabled
            else NULL_SPAN
        )
        base_cpu = REQUEST_PARSE_CPU / self.cpu_speed + self._receive_cpu_cost(
            message_size
        )

        try:
            handler = self.handlers.get(request.op)
            if handler is not None:
                yield from self.cpu(base_cpu, request)
                try:
                    response = yield from handler(self, request)
                except RequestCancelled:
                    raise
                except Exception as exc:  # noqa: BLE001 - to wire error
                    response = Response(
                        req_id=request.req_id,
                        ok=False,
                        server=self.name,
                        error="%s: %s" % (protocol.ERR_SERVER, exc),
                    )
            else:
                # Built-in ops fold the parse cost into their own CPU
                # charge: one worker-thread hold (and one timeout) per
                # request.
                response = yield from self._builtin(request, base_cpu)
        except RequestCancelled:
            # The client gave up mid-service; no reply owed, no further
            # CPU burned on zombie work.
            self.metrics.counter("server.cancelled_aborts").inc()
            span.finish(cancelled=True)
            return
        finally:
            if admission is not None:
                admission.release(self.sim.now - granted_at)

        if response is None:
            span.finish(replied="async")
            return  # handler replied on its own
        span.finish(ok=response.ok)

        if admission is not None:
            # Piggyback the backlog so clients' brownout controllers see
            # server pressure without a separate health channel.  The
            # response meta may be the shared sentinel or alias a stored
            # item's meta (the Get path), so stamping always copies.
            meta = dict(response.meta)
            meta["qd"] = admission.backlog
            response.meta = meta

        send_event = self.fabric.send(
            self.name,
            request.reply_to,
            size=response.wire_size(),
            payload=response,
            tag=protocol.TAG_RESPONSE,
        )
        send_event.defuse()  # a dead client simply never hears back

    def _send_busy(self, request: Request) -> None:
        """Reject with a typed SERVER_BUSY plus a deterministic retry hint.

        The whole point of admission control is that saying *no* costs
        near-zero CPU: no worker is held, no service process survives
        this call.
        """
        self.metrics.counter("server.busy_rejects").inc()
        admission = self.admission
        response = Response(
            req_id=request.req_id,
            ok=False,
            server=self.name,
            error=protocol.ERR_BUSY,
            meta={
                "retry_after": admission.retry_after(),
                "qd": admission.backlog,
            },
        )
        send_event = self.fabric.send(
            self.name,
            request.reply_to,
            size=response.wire_size(),
            payload=response,
            tag=protocol.TAG_RESPONSE,
        )
        send_event.defuse()

    def store_item(self, key: str, value_len: int, data, meta) -> bool:
        """Store into the slab cache, notifying the on_store hook."""
        stored = self.cache.set(key, value_len, data=data, meta=meta)
        if stored and self.on_store is not None:
            self.on_store(key, value_len)
        return stored

    def is_stale_write(self, key: str, meta) -> bool:
        """Whether ``meta`` carries an older write version than what is
        stored under ``key``.

        Version-carrying writes are last-writer-wins: a delayed replay
        (duplicate delivery, a retry whose original eventually landed, a
        slow coordinator finishing after a newer overwrite) must never
        clobber newer bytes — that is how an acknowledged write would
        silently vanish.
        """
        ver = (meta or {}).get("ver")
        if ver is None:
            return False
        existing = self.cache.peek(key)
        if existing is None or not existing.meta:
            return False
        current = existing.meta.get("ver")
        return current is not None and ver < current

    # -- built-in ops ---------------------------------------------------------
    def _builtin(self, request: Request, base_cpu: float = 0.0) -> Generator:
        if self._track_epoch:
            req_epoch = request.meta.get("epoch")
            if req_epoch is not None and req_epoch != self.epoch:
                self.metrics.counter("server.epoch_mismatch").inc()
        if request.op == "set":
            return (yield from self._op_set(request, base_cpu))
        if request.op == "get":
            return (yield from self._op_get(request, base_cpu))
        if request.op == "delete":
            return (yield from self._op_delete(request, base_cpu))
        if request.op == "ping":
            # heartbeat: parse-cost only, epoch echoed for the detector
            yield from self.cpu(base_cpu)
            return Response(
                req_id=request.req_id,
                ok=True,
                server=self.name,
                meta={"epoch": self.epoch},
            )
        yield from self.cpu(base_cpu)
        return Response(
            req_id=request.req_id,
            ok=False,
            server=self.name,
            error=protocol.ERR_UNKNOWN_OP,
        )

    def _op_set(self, request: Request, base_cpu: float = 0.0) -> Generator:
        value = request.value
        if value is None:
            value = Payload.sized(0)
        cpu_cost = base_cpu + value.size * COPY_CPU_PER_BYTE / self.cpu_speed
        # the request's meta is stored as-is; only the CRC-stamping path
        # below needs a private copy to write into
        meta = request.meta
        if self._stamp_crc and value.has_data:
            # end-to-end integrity: checksum computed at ingest
            cpu_cost += value.size * CHECKSUM_CPU_PER_BYTE / self.cpu_speed
            # Cached on the Payload: a replicated Set hands the same object
            # to every replica server, so only the first one pays the CRC.
            actual = value.checksum()
            expected = meta.get("crc")
            if expected is not None and actual != expected:
                # The sender stamped a checksum and the bytes that arrived
                # do not match: in-flight corruption.  Refuse the write so
                # a poisoned chunk is never acknowledged; the client
                # retransmits.
                yield from self.cpu(cpu_cost)
                self.corruption_detected += 1
                return Response(
                    req_id=request.req_id,
                    ok=False,
                    server=self.name,
                    error=protocol.ERR_CORRUPT,
                )
            meta = dict(meta)
            meta["crc"] = actual
        yield from self.cpu(cpu_cost)
        if self._check_stale and self.is_stale_write(request.key, meta):
            # A newer version is already stored: acknowledge without
            # writing (the sender's intent is long superseded).  The
            # ``stale`` marker lets repair paths skip relocation
            # bookkeeping for a write that did not actually land.
            self.metrics.counter("writes.stale_dropped").inc()
            return Response(
                req_id=request.req_id,
                ok=True,
                server=self.name,
                meta={"stale": True},
            )
        stored = self.store_item(
            request.key, value.size, data=value.data, meta=meta
        )
        return Response(
            req_id=request.req_id,
            ok=stored,
            server=self.name,
            error="" if stored else protocol.ERR_OUT_OF_MEMORY,
        )

    def _op_get(self, request: Request, base_cpu: float = 0.0) -> Generator:
        item = self.cache.get(request.key)
        if item is None:
            yield from self.cpu(base_cpu)
            return Response(
                req_id=request.req_id,
                ok=False,
                server=self.name,
                error=protocol.ERR_NOT_FOUND,
            )
        if (
            self.verify_on_read
            and item.data is not None
            and "crc" in item.meta
        ):
            yield from self.cpu(
                base_cpu
                + item.value_len * CHECKSUM_CPU_PER_BYTE / self.cpu_speed,
                request,
            )
            base_cpu = 0.0
            if zlib.crc32(item.data) != item.meta["crc"]:
                # bit rot: drop the poisoned item and tell the client,
                # which recovers from a replica or parity chunk
                self.corruption_detected += 1
                self.cache.delete(request.key)
                return Response(
                    req_id=request.req_id,
                    ok=False,
                    server=self.name,
                    error=protocol.ERR_CORRUPT,
                )
        yield from self.cpu(
            base_cpu + item.value_len * COPY_CPU_PER_BYTE / self.cpu_speed,
            request,
        )
        # the stored meta is aliased into the response (read-only by
        # contract; the one writer, admission's qd stamp, copies first)
        return Response(
            req_id=request.req_id,
            ok=True,
            server=self.name,
            value=Payload(item.value_len, item.data),
            meta=item.meta,
        )

    def _op_delete(self, request: Request, base_cpu: float = 0.0) -> Generator:
        yield from self.cpu(base_cpu)  # hash probe is in the base cost
        removed = self.cache.delete(request.key)
        return Response(
            req_id=request.req_id,
            ok=removed,
            server=self.name,
            error="" if removed else protocol.ERR_NOT_FOUND,
        )
