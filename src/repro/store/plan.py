"""Compiled request plans: flat per-component resolutions of feature flags.

The :class:`~repro.core.features.Features` builder is the single place
feature flags live; *these* classes are what the hot path actually
touches.  A plan is compiled once — at cluster configuration time, or
when a :class:`~repro.store.client.KVClient` is constructed standalone —
and the per-operation code branches on plain plan attributes, never on
feature flags, policy lookups or ``getattr`` probes.

Split out of :mod:`repro.core.features` so the store layer can import
plan types without pulling in the cluster facade (which imports the
store right back).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.store.policy import DEFAULT_POLICY, RetryPolicy


@dataclass(frozen=True)
class AdmissionConfig:
    """Server-side admission-control knobs (see ``enable_admission``)."""

    max_queue: int = 64
    bg_max_queue: int = 16
    sojourn_deadline: float = 0.02


class ClientPlan:
    """Compiled per-client request plan: what the hot path must do.

    Every field is resolved once, at compile time, from the client's
    :class:`~repro.store.policy.RetryPolicy` and the cluster's
    :class:`~repro.core.features.Features`.
    """

    __slots__ = (
        "policy",
        "use_retries",
        "use_guard",
        "timeout",
        "verify_crc",
        "stamp_epoch",
    )

    def __init__(
        self,
        policy: RetryPolicy,
        use_retries: bool,
        use_guard: bool,
        timeout: Optional[float],
        verify_crc: bool,
        stamp_epoch: bool,
    ):
        self.policy = policy
        self.use_retries = use_retries
        self.use_guard = use_guard
        self.timeout = timeout
        self.verify_crc = verify_crc
        self.stamp_epoch = stamp_epoch

    @property
    def is_fast_path(self) -> bool:
        """True when the plan adds nothing over the bare request path."""
        return not (self.use_retries or self.use_guard or self.timeout)


class ServerPlan:
    """Compiled per-server plan mirroring :class:`ClientPlan`."""

    __slots__ = (
        "admission",
        "cancellable",
        "verify_on_read",
        "integrity",
        "check_stale",
        "track_epoch",
    )

    def __init__(
        self,
        admission: Optional[AdmissionConfig],
        cancellable: bool,
        verify_on_read: bool,
        integrity: bool,
        check_stale: bool,
        track_epoch: bool,
    ):
        self.admission = admission
        self.cancellable = cancellable
        self.verify_on_read = verify_on_read
        self.integrity = integrity
        self.check_stale = check_stale
        self.track_epoch = track_epoch


def compile_client_plan(
    policy: Optional[RetryPolicy],
    integrity: bool = True,
    stamp_epoch: bool = False,
) -> ClientPlan:
    """Resolve a retry policy (+ cluster features) into a flat plan.

    With the default policy (no retries, no deadline, no overload) the
    result is the fast path: operations run the scheme generator
    directly, requests go on the wire without a timeout closure, and —
    unless epoch stamping is on — no epoch lands in request metadata.
    """
    policy = policy or DEFAULT_POLICY
    return ClientPlan(
        policy=policy,
        use_retries=policy.max_retries > 0,
        use_guard=policy.overload is not None,
        timeout=policy.request_timeout,
        verify_crc=integrity,
        stamp_epoch=stamp_epoch,
    )
