"""Asynchronous Request Processing Engine (ARPE).

The paper's ARPE sits between the application and the RDMA-enhanced
Libmemcached client: new Set/Get requests enter a request queue via the
non-blocking ``memcached_iset``/``memcached_iget`` APIs, a pool of
pre-registered buffers bounds how many operations can be in flight, and a
tunable send/receive window gates progress so completions can be reaped
with ``memcached_test``/``memcached_wait``.

Overlap is the point: while operation *i* waits on the network, the engine
starts operation *i+1* — including its encode/decode compute — which is
how online erasure coding hides :math:`T_{encode}` (Section IV-A).
"""

from __future__ import annotations

import itertools
from typing import Callable, Generator, Iterable, List, Optional

from repro.common.payload import Payload
from repro.simulation import Event, Resource, Simulator


class OpMetrics:
    """Per-operation phase breakdown (drives Figure 9)."""

    __slots__ = (
        "enqueued_at",
        "started_at",
        "completed_at",
        "encode_time",
        "decode_time",
        "request_time",
        "wait_time",
    )

    def __init__(self, now: float):
        self.enqueued_at = now
        self.started_at = float("nan")
        self.completed_at = float("nan")
        self.encode_time = 0.0
        self.decode_time = 0.0
        self.request_time = 0.0
        self.wait_time = 0.0

    @property
    def latency(self) -> float:
        """Application-visible latency: enqueue to completion."""
        return self.completed_at - self.enqueued_at

    @property
    def service_time(self) -> float:
        """Engine-side latency: start of processing to completion."""
        return self.completed_at - self.started_at


class RequestHandle:
    """A non-blocking operation in flight (``iset``/``iget`` return this)."""

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, op: str, key: str):
        self.sim = sim
        self.handle_id = next(self._ids)
        self.op = op
        self.key = key
        self.done: Event = sim.event()
        self.metrics = OpMetrics(sim.now)
        self.ok: bool = False
        self.error: str = ""
        self.result: Optional[Payload] = None

    @property
    def completed(self) -> bool:
        """Whether the operation has finished (ok or not)."""
        return self.done.triggered

    def _finish(self, ok: bool, result: Optional[Payload], error: str) -> None:
        self.ok = ok
        self.result = result
        self.error = error
        self.metrics.completed_at = self.sim.now
        self.done.succeed(self)


Runner = Callable[[RequestHandle], Generator]


class AsyncRequestEngine:
    """Bounded-concurrency execution engine for request handles."""

    def __init__(
        self,
        sim: Simulator,
        window: int = 32,
        buffer_pool: int = 64,
    ):
        if window < 1 or buffer_pool < 1:
            raise ValueError("window and buffer_pool must be >= 1")
        self.sim = sim
        self.window = Resource(sim, window)
        self.buffers = Resource(sim, buffer_pool)
        self.submitted = 0
        self.completed = 0

    @property
    def in_flight(self) -> int:
        """Operations submitted but not yet completed."""
        return self.submitted - self.completed

    def submit(self, handle: RequestHandle, runner: Runner) -> RequestHandle:
        """Queue the operation; returns immediately (non-blocking API)."""
        self.submitted += 1
        self.sim.process(
            self._run(handle, runner), name="arpe.%s.%s" % (handle.op, handle.key)
        )
        return handle

    def _run(self, handle: RequestHandle, runner: Runner) -> Generator:
        buffer_req = self.buffers.request()
        yield buffer_req
        window_req = self.window.request()
        yield window_req
        handle.metrics.started_at = self.sim.now
        try:
            ok, result, error = yield from runner(handle)
        except Exception as exc:  # noqa: BLE001 - surfaced via the handle
            ok, result, error = False, None, str(exc)
        finally:
            self.window.release(window_req)
            self.buffers.release(buffer_req)
        self.completed += 1
        handle._finish(ok, result, error)

    # -- completion APIs (memcached_test / memcached_wait) -------------------
    def test(self, handle: RequestHandle) -> bool:
        """Non-blocking completion probe."""
        return handle.completed

    def wait_all(self, handles: Iterable[RequestHandle]) -> Event:
        """Event firing once every given handle has completed."""
        return self.sim.all_of([h.done for h in handles])

    def wait_any(self, handles: List[RequestHandle]) -> Event:
        """Event firing when the first of the handles completes."""
        return self.sim.any_of([h.done for h in handles])

    def drain(self) -> Generator:
        """Process generator: wait until the engine is fully idle."""
        while self.in_flight > 0:
            yield self.sim.timeout(1e-6)
