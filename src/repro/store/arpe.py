"""Asynchronous Request Processing Engine (ARPE).

The paper's ARPE sits between the application and the RDMA-enhanced
Libmemcached client: new Set/Get requests enter a request queue via the
non-blocking ``memcached_iset``/``memcached_iget`` APIs, a pool of
pre-registered buffers bounds how many operations can be in flight, and a
tunable send/receive window gates progress so completions can be reaped
with ``memcached_test``/``memcached_wait``.

Overlap is the point: while operation *i* waits on the network, the engine
starts operation *i+1* — including its encode/decode compute — which is
how online erasure coding hides :math:`T_{encode}` (Section IV-A).

Every completion carries a typed :class:`~repro.store.result.OpResult`;
the engine populates per-operation :class:`OpMetrics` and, when a real
tracer is attached, an ``op`` span that scheme-level ``encode``/``post``/
``transfer``/``wait`` spans parent themselves under.
"""

from __future__ import annotations

import itertools
from typing import Callable, Generator, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, NULL_TRACER
from repro.simulation import Event, Resource, Simulator
from repro.store.result import ErrorCode, OpResult


class OpMetrics:
    """Per-operation phase breakdown (drives Figure 9).

    ``span`` is the operation's trace span (``NULL_SPAN`` when untraced);
    schemes parent their phase spans under it.
    """

    __slots__ = (
        "enqueued_at",
        "started_at",
        "completed_at",
        "encode_time",
        "decode_time",
        "request_time",
        "wait_time",
        "span",
        "info",
    )

    def __init__(self, now: float):
        self.enqueued_at = now
        self.started_at = float("nan")
        self.completed_at = float("nan")
        self.encode_time = 0.0
        self.decode_time = 0.0
        self.request_time = 0.0
        self.wait_time = 0.0
        self.span = NULL_SPAN
        #: scheme-stamped annotations (e.g. ``ver``, ``hedged``,
        #: ``degraded``) — free-form, read by repair and the chaos soak
        self.info = {}

    @property
    def latency(self) -> float:
        """Application-visible latency: enqueue to completion."""
        return self.completed_at - self.enqueued_at

    @property
    def service_time(self) -> float:
        """Engine-side latency: start of processing to completion."""
        return self.completed_at - self.started_at


class RequestHandle:
    """A non-blocking operation in flight (``iset``/``iget`` return this).

    Once completed, the handle carries the operation's typed
    :class:`OpResult` in :attr:`result` (``None`` while in flight):
    ``handle.result.ok``, ``handle.result.value``,
    ``handle.result.error`` / ``error_text`` are the API.
    """

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, op: str, key: str):
        self.sim = sim
        self.handle_id = next(self._ids)
        self.op = op
        self.key = key
        self.done: Event = sim.event()
        self.metrics = OpMetrics(sim.now)
        self.result: Optional[OpResult] = None
        #: per-key results for batched ops (``multi_set``/``multi_get``):
        #: ``{key: OpResult}`` once completed, ``None`` for single ops.
        self.results = None

    @property
    def completed(self) -> bool:
        """Whether the operation has finished (ok or not)."""
        return self.done.triggered

    def _finish(self, result: OpResult) -> None:
        self.result = result
        self.metrics.completed_at = self.sim.now
        self.metrics.span.finish(
            ok=result.ok, error=result.error.value
        )
        self.done.succeed(self)


Runner = Callable[[RequestHandle], Generator]


class AsyncRequestEngine:
    """Bounded-concurrency execution engine for request handles."""

    def __init__(
        self,
        sim: Simulator,
        window: int = 32,
        buffer_pool: int = 64,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if window < 1 or buffer_pool < 1:
            raise ValueError("window and buffer_pool must be >= 1")
        self.sim = sim
        self.window = Resource(sim, window)
        self.buffers = Resource(sim, buffer_pool)
        self.submitted = 0
        self.completed = 0
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics or MetricsRegistry()
        self._buffer_wait = self.metrics.histogram("arpe.buffer_wait")
        self._window_wait = self.metrics.histogram("arpe.window_wait")
        self._window_occupancy = self.metrics.histogram("arpe.window_occupancy")
        self._submitted_counter = self.metrics.counter("arpe.submitted")
        self._completed_counter = self.metrics.counter("arpe.completed")
        self._failed_counter = self.metrics.counter("arpe.failed")
        self._idle: Optional[Event] = None

    @property
    def in_flight(self) -> int:
        """Operations submitted but not yet completed."""
        return self.submitted - self.completed

    def submit(self, handle: RequestHandle, runner: Runner) -> RequestHandle:
        """Queue the operation; returns immediately (non-blocking API)."""
        self.submitted += 1
        self._submitted_counter.inc()
        self.sim.process(
            self._run(handle, runner),
            name=(
                "arpe.%s.%s" % (handle.op, handle.key)
                if self.tracer.enabled
                else "arpe.op"
            ),
        )
        return handle

    def _run(self, handle: RequestHandle, runner: Runner) -> Generator:
        enqueued = self.sim.now
        buffer_req = self.buffers.request()
        if not buffer_req.processed:  # uncontended grants skip the yield
            yield buffer_req
        self._buffer_wait.observe(self.sim.now - enqueued)
        granted = self.sim.now
        window_req = self.window.request()
        if not window_req.processed:
            yield window_req
        self._window_wait.observe(self.sim.now - granted)
        self._window_occupancy.observe(self.window.in_use)
        handle.metrics.started_at = self.sim.now
        try:
            result = yield from runner(handle)
            if not isinstance(result, OpResult):
                raise TypeError(
                    "runner for %s %r returned %r; schemes must return OpResult"
                    % (handle.op, handle.key, result)
                )
        except Exception as exc:  # noqa: BLE001 - surfaced via the handle
            result = OpResult.failure(ErrorCode.INTERNAL, str(exc))
        finally:
            self.window.release(window_req)
            self.buffers.release(buffer_req)
        self.completed += 1
        self._completed_counter.inc()
        if not result.ok:
            self._failed_counter.inc()
        handle._finish(result)
        if self.in_flight == 0 and self._idle is not None:
            idle, self._idle = self._idle, None
            idle.succeed(None)

    # -- completion APIs (memcached_test / memcached_wait) -------------------
    def test(self, handle: RequestHandle) -> bool:
        """Non-blocking completion probe."""
        return handle.completed

    def wait_all(self, handles: Iterable[RequestHandle]) -> Event:
        """Event firing once every given handle has completed."""
        return self.sim.all_of([h.done for h in handles])

    def wait_any(self, handles: List[RequestHandle]) -> Event:
        """Event firing with the *first completed handle* as its value.

        Drive with ``first = yield engine.wait_any(handles)`` — the caller
        gets the winning :class:`RequestHandle` directly instead of having
        to dig through the raw ``any_of`` condition.
        """
        handles = list(handles)
        if not handles:
            raise ValueError("wait_any needs at least one handle")
        winner = self.sim.event()
        inner = self.sim.any_of([h.done for h in handles])

        def _relay(event: Event) -> None:
            if not event.ok:  # pragma: no cover - handles never fail
                winner.fail(event.value)
                return
            _done_event, completed_handle = event.value
            winner.succeed(completed_handle)

        inner.callbacks.append(_relay)
        return winner

    def drain(self) -> Generator:
        """Process generator: wait until the engine is fully idle.

        Event-driven: the engine triggers an idle event when ``in_flight``
        reaches zero, so draining costs one wakeup instead of busy-polling
        the simulator with micro-timeouts.
        """
        while self.in_flight > 0:
            if self._idle is None:
                self._idle = self.sim.event()
            yield self._idle
