"""Slab-class memory allocator with LRU eviction (Memcached's heart).

Memory is carved into fixed-size *pages* assigned on demand to *slab
classes* of geometrically growing chunk sizes.  An item occupies one chunk
of the smallest class that fits ``key + value + item header``.  When the
page pool is exhausted, a class evicts its own least-recently-used items
to make room — and when even that cannot produce a slot, the store drops
the write, which is exactly the "data loss" the paper reports for
Async-Rep at 40 clients in Figure 10.

Payload bytes (when present) are kept alongside the accounting so Get
returns real data; accounting itself is byte-accurate regardless.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.store.protocol import EMPTY_META

#: Per-item metadata overhead (memcached's item header + CAS).
ITEM_HEADER = 56

# One slab page.  Stock memcached uses 1 MB, which cannot hold a 1 MB
# *value* once the item header and key are added; the paper stores 1 MB
# values, so (like RDMA-Memcached's raised -I limit) pages get 8 KB of
# headroom.
DEFAULT_PAGE_SIZE = 1024 * 1024 + 8192
DEFAULT_MIN_CHUNK = 96
DEFAULT_GROWTH = 1.25


class StoredItem:
    """One cache entry — slotted, and metaless items share EMPTY_META,
    because a million-key cluster holds a million of these."""

    __slots__ = ("key", "value_len", "data", "meta", "class_id")

    def __init__(
        self,
        key: str,
        value_len: int,
        data: Optional[bytes],
        meta: Optional[dict] = None,
        class_id: int = 0,
    ):
        self.key = key
        self.value_len = value_len
        self.data = data
        self.meta = EMPTY_META if meta is None else meta
        self.class_id = class_id

    def __repr__(self) -> str:
        return "StoredItem(key=%r, value_len=%r, class_id=%r)" % (
            self.key,
            self.value_len,
            self.class_id,
        )


class SlabClass:
    """One chunk-size class: its pages, free slots, and LRU order."""

    def __init__(self, class_id: int, chunk_size: int, page_size: int):
        self.class_id = class_id
        self.chunk_size = chunk_size
        self.slots_per_page = max(1, page_size // chunk_size)
        self.pages = 0
        self.free_slots = 0
        self.lru: "OrderedDict[str, StoredItem]" = OrderedDict()

    @property
    def used_slots(self) -> int:
        return len(self.lru)


class SlabCache:
    """Bounded key-value cache with slab allocation and LRU eviction."""

    def __init__(
        self,
        memory_limit: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        min_chunk: int = DEFAULT_MIN_CHUNK,
        growth_factor: float = DEFAULT_GROWTH,
        item_max: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        metric_prefix: str = "slab",
    ):
        if memory_limit < page_size:
            raise ValueError("memory_limit smaller than one page")
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must exceed 1.0")
        self.memory_limit = memory_limit
        self.page_size = page_size
        self.item_max = item_max or page_size
        self.classes: List[SlabClass] = []
        size = min_chunk
        class_id = 0
        while size < self.item_max:
            self.classes.append(SlabClass(class_id, size, page_size))
            size = int(size * growth_factor) + 1
            class_id += 1
        self.classes.append(SlabClass(class_id, self.item_max, page_size))
        self._index: Dict[str, StoredItem] = {}
        self.pages_allocated = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.failed_stores = 0
        self.failed_bytes = 0
        self.total_sets = 0
        self.total_gets = 0
        self.hits = 0
        registry = metrics or MetricsRegistry()
        self._evictions_counter = registry.counter(
            "%s.evictions" % metric_prefix
        )
        self._evicted_bytes_counter = registry.counter(
            "%s.evicted_bytes" % metric_prefix
        )
        self._failed_stores_counter = registry.counter(
            "%s.failed_stores" % metric_prefix
        )

    # -- sizing --------------------------------------------------------------
    def item_footprint(self, key: str, value_len: int) -> int:
        """Bytes one item occupies: header + key + value."""
        return ITEM_HEADER + len(key) + value_len

    def class_for(self, key: str, value_len: int) -> Optional[SlabClass]:
        """Smallest slab class that fits the item, or None if oversized."""
        need = self.item_footprint(key, value_len)
        if need > self.item_max:
            return None
        for slab_class in self.classes:
            if slab_class.chunk_size >= need:
                return slab_class
        return None

    # -- accounting ------------------------------------------------------------
    @property
    def used_memory(self) -> int:
        """Bytes of memory committed to pages (what an operator sees)."""
        return self.pages_allocated * self.page_size

    @property
    def stored_bytes(self) -> int:
        """Sum of live item footprints (logical occupancy)."""
        return sum(
            self.item_footprint(item.key, item.value_len)
            for item in self._index.values()
        )

    @property
    def item_count(self) -> int:
        """Live items stored."""
        return len(self._index)

    def utilization(self) -> float:
        """Fraction of the memory limit committed to pages."""
        return self.used_memory / self.memory_limit

    # -- operations ---------------------------------------------------------
    def set(
        self,
        key: str,
        value_len: int,
        data: Optional[bytes] = None,
        meta: Optional[dict] = None,
    ) -> bool:
        """Store an item; returns ``False`` when the write had to be dropped.

        Follows memcached: replace frees the old slot first; a full cache
        evicts LRU items *of the same class*; a class that cannot get its
        first page (pool exhausted, nothing evictable) drops the write.
        """
        self.total_sets += 1
        slab_class = self.class_for(key, value_len)
        if slab_class is None:
            self.failed_stores += 1
            self.failed_bytes += value_len
            self._failed_stores_counter.inc()
            return False

        existing = self._index.pop(key, None)
        if existing is not None:
            old_class = self.classes[existing.class_id]
            del old_class.lru[key]
            old_class.free_slots += 1

        if not self._ensure_slot(slab_class):
            self.failed_stores += 1
            self.failed_bytes += value_len
            self._failed_stores_counter.inc()
            return False

        # non-empty metas are copied (the caller's dict may alias a live
        # request); empty ones collapse onto the shared sentinel
        item = StoredItem(
            key=key,
            value_len=value_len,
            data=data,
            meta=dict(meta) if meta else None,
            class_id=slab_class.class_id,
        )
        slab_class.free_slots -= 1
        slab_class.lru[key] = item
        self._index[key] = item
        return True

    def get(self, key: str) -> Optional[StoredItem]:
        """Fetch an item, refreshing its LRU recency."""
        self.total_gets += 1
        item = self._index.get(key)
        if item is None:
            return None
        self.hits += 1
        slab_class = self.classes[item.class_id]
        slab_class.lru.move_to_end(key)
        return item

    def keys(self) -> List[str]:
        """Live item keys, in insertion order (fault injection targets)."""
        return list(self._index)

    def peek(self, key: str) -> Optional[StoredItem]:
        """Read without touching LRU recency or hit statistics."""
        return self._index.get(key)

    def delete(self, key: str) -> bool:
        """Remove an item; returns False when absent."""
        item = self._index.pop(key, None)
        if item is None:
            return False
        slab_class = self.classes[item.class_id]
        del slab_class.lru[key]
        slab_class.free_slots += 1
        return True

    def flush(self) -> None:
        """Drop all items (keeps allocated pages, like memcached flush_all)."""
        for slab_class in self.classes:
            slab_class.free_slots += len(slab_class.lru)
            slab_class.lru.clear()
        self._index.clear()

    def wipe(self) -> None:
        """Simulate node memory loss: everything — items and pages — gone."""
        for slab_class in self.classes:
            slab_class.lru.clear()
            slab_class.free_slots = 0
            slab_class.pages = 0
        self._index.clear()
        self.pages_allocated = 0

    # -- internals ----------------------------------------------------------
    def _ensure_slot(self, slab_class: SlabClass) -> bool:
        if slab_class.free_slots > 0:
            return True
        if (self.pages_allocated + 1) * self.page_size <= self.memory_limit:
            self.pages_allocated += 1
            slab_class.pages += 1
            slab_class.free_slots += slab_class.slots_per_page
            return True
        if slab_class.lru:
            victim_key, victim = slab_class.lru.popitem(last=False)
            del self._index[victim_key]
            slab_class.free_slots += 1
            self.evictions += 1
            self.evicted_bytes += victim.value_len
            self._evictions_counter.inc()
            self._evicted_bytes_counter.inc(victim.value_len)
            return True
        return False
