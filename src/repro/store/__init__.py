"""Memcached-like key-value store substrate.

Reproduces the pieces of RDMA-Memcached/Libmemcached the paper builds on:

- :mod:`repro.store.hashring` — consistent hashing plus the paper's
  "N-1 following servers" chunk-placement rule (Section IV-A).
- :mod:`repro.store.slab` — slab-class memory allocator with LRU
  eviction and byte-accurate accounting (drives Figure 10).
- :mod:`repro.store.protocol` — request/response wire records.
- :mod:`repro.store.server` — the Memcached server process: worker
  threads, request dispatch, pluggable op handlers (the hook the
  server-side erasure designs use).
- :mod:`repro.store.client` — blocking and non-blocking
  (``iset``/``iget``/``test``/``wait``) client APIs.
- :mod:`repro.store.arpe` — the Asynchronous Request Processing Engine:
  registered buffer pool, request queue, send window.
- :mod:`repro.store.result` — typed operation outcomes
  (:class:`OpResult` / :class:`ErrorCode`) carried by every completed
  request handle.
"""

from repro.store.arpe import AsyncRequestEngine, RequestHandle
from repro.store.client import KVClient, KVStoreError
from repro.store.hashring import HashRing
from repro.store.protocol import Request, Response
from repro.store.result import ErrorCode, OpResult
from repro.store.server import MemcachedServer
from repro.store.slab import SlabCache

__all__ = [
    "AsyncRequestEngine",
    "ErrorCode",
    "HashRing",
    "KVClient",
    "KVStoreError",
    "MemcachedServer",
    "OpResult",
    "Request",
    "RequestHandle",
    "Response",
    "SlabCache",
]
