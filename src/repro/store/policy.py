"""Request-hardening policy: deadlines, backoff retries, hedged reads.

A :class:`RetryPolicy` travels with a :class:`~repro.store.client.KVClient`
and tells the request path how aggressive to be when the cluster
misbehaves.  The default policy disables everything — timeouts, retries
and hedging are strictly opt-in, so a fault-free run is bit-identical to
one without a policy attached.

:class:`AdaptiveCutoff` is the hedged-read trigger: it keeps a rolling
window of observed chunk-fetch latencies and exposes a percentile-based
cutoff.  A read that has waited past the cutoff launches one redundant
fetch against a different chunk (the classic "tied requests" tail-latency
defense), which is what lets Gets ride out a gray, slow node without
waiting for a full timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class OverloadPolicy:
    """Client-side overload-protection knobs.

    Attaching one of these to a :class:`RetryPolicy` (via its
    ``overload`` field) turns on per-node token-bucket pacing, the
    SERVER_BUSY/TIMEOUT-driven circuit breaker, AIMD sizing of the ARPE
    send window, and the brownout load-level state machine.  All knobs
    are deterministic functions of the virtual clock.

    ``rate_limit`` / ``bucket_burst``
        Token bucket per destination node: sustained requests/second and
        the burst allowance.  ``rate_limit=None`` disables pacing.
    ``breaker_window`` / ``breaker_threshold`` / ``breaker_ratio``
        The breaker trips OPEN when, over the last ``breaker_window``
        outcomes to a node (once at least ``breaker_threshold`` have been
        seen), the fraction that were SERVER_BUSY/TIMEOUT reaches
        ``breaker_ratio``.
    ``breaker_cooldown`` / ``breaker_probes``
        OPEN fast-fails everything for ``breaker_cooldown`` seconds, then
        HALF_OPEN admits ``breaker_probes`` trial requests; all-success
        closes the breaker, any failure re-opens it.
    ``aimd`` / ``aimd_decrease`` / ``aimd_recovery``
        AIMD control of the ARPE window: on a busy/timeout signal the
        window shrinks multiplicatively by ``aimd_decrease`` (at most
        once per RTT-ish interval); every ``aimd_recovery`` consecutive
        successes grow it back by one slot, up to its configured size.
    ``elevated_queue`` / ``overload_queue``
        Brownout step-up thresholds on the smoothed busy/shed signal and
        piggybacked server queue depths (see
        :class:`repro.overload.brownout.BrownoutController`).
    ``elevated_p99`` / ``overload_p99``
        Step-up thresholds as multiples of the warmed-up baseline p99.
    ``dwell``
        Minimum seconds a level is held before stepping back down
        (hysteresis against flapping).
    """

    rate_limit: Optional[float] = None
    bucket_burst: float = 32.0
    breaker_window: int = 32
    breaker_threshold: int = 10
    breaker_ratio: float = 0.5
    breaker_cooldown: float = 0.05
    breaker_probes: int = 3
    aimd: bool = True
    aimd_decrease: float = 0.5
    aimd_recovery: int = 8
    aimd_interval: float = 0.005
    elevated_queue: float = 4.0
    overload_queue: float = 16.0
    elevated_p99: float = 3.0
    overload_p99: float = 8.0
    dwell: float = 0.05


#: Overload protection with every mechanism enabled at soak-friendly
#: settings (pacing off by default — AIMD bounds in-flight work instead).
OVERLOAD_POLICY = OverloadPolicy()


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for per-operation deadlines, retries and hedging.

    ``request_timeout``
        Deadline for one request/response round-trip; expiry completes
        the waiter with ``ERR_TIMEOUT``.  ``None`` waits forever (the
        historical behavior).
    ``op_deadline``
        Overall budget for one logical operation including retries; once
        exceeded the operation fails with ``ErrorCode.TIMEOUT`` instead
        of backing off again.
    ``max_retries``
        How many times a failed operation is re-attempted (0 = never).
        Only :attr:`ErrorCode.retryable` failures are retried.
    ``backoff_base`` / ``backoff_factor`` / ``backoff_max``
        Exponential backoff: attempt *i* sleeps
        ``min(backoff_max, backoff_base * backoff_factor**(i-1))``.
    ``hedge``
        Enable hedged chunk reads in the erasure schemes.
    ``hedge_percentile`` / ``hedge_min_samples`` / ``hedge_multiplier``
        The hedge fires once a fetch has waited longer than
        ``percentile(observed latencies) * multiplier``; no hedging until
        ``hedge_min_samples`` fetches have been observed.
    ``durable_writes``
        Strict-ack Sets: acknowledge only when *all* n chunks are stored,
        retrying and relocating chunks off dead nodes.  The default
        (False) keeps the paper's ack-at-k fast path.
    ``overload``
        Optional :class:`OverloadPolicy` enabling client-side overload
        protection (token buckets, circuit breakers, AIMD window,
        brownout).  ``None`` keeps every mechanism off, preserving the
        legacy request path byte for byte.
    """

    request_timeout: Optional[float] = None
    op_deadline: Optional[float] = None
    max_retries: int = 0
    backoff_base: float = 0.0005
    backoff_factor: float = 2.0
    backoff_max: float = 0.05
    hedge: bool = False
    hedge_percentile: float = 0.95
    hedge_min_samples: int = 20
    hedge_multiplier: float = 1.5
    durable_writes: bool = False
    overload: Optional[OverloadPolicy] = None

    def backoff(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        delay = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        return min(self.backoff_max, delay)


#: Everything off: no timeouts, no retries, no hedging (legacy behavior).
DEFAULT_POLICY = RetryPolicy()

#: A sensible hardened profile for chaos runs: tight per-request
#: deadlines, a handful of backoff retries, hedging, strict-ack writes.
HARDENED_POLICY = RetryPolicy(
    request_timeout=0.25,
    op_deadline=5.0,
    max_retries=4,
    hedge=True,
    durable_writes=True,
)


class AdaptiveCutoff:
    """Rolling-percentile latency cutoff for hedged reads.

    Bounded memory: keeps the most recent ``window`` samples in a ring
    buffer.  ``cutoff()`` is ``None`` until ``min_samples`` observations
    have arrived — hedging stays off while the estimate would be noise.
    """

    def __init__(
        self,
        percentile: float = 0.95,
        min_samples: int = 20,
        multiplier: float = 1.5,
        window: int = 512,
    ):
        if not 0.0 < percentile <= 1.0:
            raise ValueError("percentile must be in (0, 1]")
        self.percentile = percentile
        self.min_samples = min_samples
        self.multiplier = multiplier
        self.window = window
        self._samples = []
        self._next = 0
        self.observed = 0

    def observe(self, latency: float) -> None:
        """Record one completed fetch latency."""
        self.observed += 1
        if len(self._samples) < self.window:
            self._samples.append(latency)
        else:
            self._samples[self._next] = latency
            self._next = (self._next + 1) % self.window

    def cutoff(self) -> Optional[float]:
        """Current hedge trigger in seconds, or ``None`` if not warmed up."""
        if self.observed < self.min_samples or not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(
            len(ordered) - 1, int(self.percentile * (len(ordered) - 1) + 0.5)
        )
        return ordered[index] * self.multiplier
