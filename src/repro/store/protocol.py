"""Wire-level request/response records and pending-request routing.

Both clients and servers (which talk to peer servers in the server-side
erasure designs) multiplex requests and responses over one endpoint inbox;
:class:`PendingTable` matches responses back to the event a caller is
waiting on.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.common.payload import Payload
from repro.simulation import Event, Simulator

#: Fixed serialized header cost for requests and responses.
REQUEST_HEADER = 48
RESPONSE_HEADER = 48

TAG_REQUEST = "req"
TAG_RESPONSE = "resp"

#: Shared sentinel for "no metadata".  Most requests and responses carry
#: no meta at all; giving each one its own empty dict was a measurable
#: slice of per-op allocation at scale.  Treat it as immutable — writers
#: must go through :func:`meta_setdefault` (or replace ``.meta`` with a
#: private dict) so a stray write can never leak to every other record.
EMPTY_META: Dict[str, Any] = {}


def meta_setdefault(record, key: str, value) -> None:
    """``record.meta.setdefault(key, value)`` with copy-on-write.

    When ``record.meta`` is the shared :data:`EMPTY_META` sentinel it is
    swapped for a private single-entry dict instead of being mutated.
    """
    meta = record.meta
    if meta is EMPTY_META:
        record.meta = {key: value}
    else:
        meta.setdefault(key, value)


class Request:
    """A client -> server (or server -> server) operation."""

    __slots__ = ("op", "key", "req_id", "reply_to", "value", "meta")

    def __init__(
        self,
        op: str,
        key: str,
        req_id: int,
        reply_to: str,
        value: Optional[Payload] = None,
        meta: Optional[Dict[str, Any]] = None,
    ):
        self.op = op
        self.key = key
        self.req_id = req_id
        self.reply_to = reply_to
        self.value = value
        self.meta = EMPTY_META if meta is None else meta

    def replace(self, **changes) -> "Request":
        """A shallow copy with ``changes`` applied (dataclasses.replace
        for a slotted record)."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(changes)
        return Request(**fields)

    def __repr__(self) -> str:
        return "Request(op=%r, key=%r, req_id=%r, reply_to=%r)" % (
            self.op,
            self.key,
            self.req_id,
            self.reply_to,
        )

    def wire_size(self) -> int:
        size = REQUEST_HEADER + len(self.key)
        if self.value is not None:
            size += self.value.size
        return size


class Response:
    """The server's answer; ``ok=False`` carries an error code."""

    __slots__ = ("req_id", "ok", "server", "value", "error", "meta")

    def __init__(
        self,
        req_id: int,
        ok: bool,
        server: str,
        value: Optional[Payload] = None,
        error: str = "",
        meta: Optional[Dict[str, Any]] = None,
    ):
        self.req_id = req_id
        self.ok = ok
        self.server = server
        self.value = value
        self.error = error
        self.meta = EMPTY_META if meta is None else meta

    def replace(self, **changes) -> "Response":
        """A shallow copy with ``changes`` applied."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(changes)
        return Response(**fields)

    def __repr__(self) -> str:
        return "Response(req_id=%r, ok=%r, server=%r, error=%r)" % (
            self.req_id,
            self.ok,
            self.server,
            self.error,
        )

    def wire_size(self) -> int:
        size = RESPONSE_HEADER
        if self.value is not None:
            size += self.value.size
        return size


def issue_request(
    fabric,
    pending: "PendingTable",
    request: Request,
    dst: str,
    span=None,
    timeout: Optional[float] = None,
    on_timeout=None,
    waiter: Optional[Event] = None,
) -> Event:
    """Send ``request`` and return an event firing with its :class:`Response`.

    Used by both the client library and servers talking to peers.  If the
    fabric reports the destination unreachable, the waiter completes with
    an ``ok=False`` / ``ERR_UNREACHABLE`` response — failures are data,
    so callers can fail over without exception plumbing.  ``span``
    parents the fabric's transfer span under the caller's operation span.

    ``timeout`` arms a per-request deadline: if no response has landed
    within that many seconds, the waiter completes with an ``ok=False`` /
    ``ERR_TIMEOUT`` response and the real response, should it ever
    arrive, is dropped as a late packet.  ``on_timeout(request)`` fires
    only when the deadline actually expired an outstanding request.

    ``waiter`` accepts a pre-registered completion event (from
    :meth:`PendingTable.register`) so callers that delay the send — e.g.
    a token-bucket pacer — can hand the waiter out before the request
    actually hits the wire.
    """
    if waiter is None:
        waiter = pending.register(request.req_id)
    send_event = fabric.send(
        request.reply_to,  # the requester replies-to itself: that is the src
        dst,
        size=request.wire_size(),
        payload=request,
        tag=TAG_REQUEST,
        parent=span,
    )

    def _on_send(event: Event) -> None:
        if not event.ok:
            pending.complete(
                Response(
                    req_id=request.req_id,
                    ok=False,
                    server=dst,
                    error=ERR_UNREACHABLE,
                )
            )

    send_event.callbacks.append(_on_send)
    send_event.defuse()

    if timeout is not None:
        timer = fabric.sim.timeout(timeout)

        def _expire(_event: Event) -> None:
            expired = pending.complete(
                Response(
                    req_id=request.req_id,
                    ok=False,
                    server=dst,
                    error=ERR_TIMEOUT,
                )
            )
            if expired and on_timeout is not None:
                on_timeout(request)

        timer.callbacks.append(_expire)
    return waiter


ERR_NOT_FOUND = "NOT_FOUND"
ERR_OUT_OF_MEMORY = "OUT_OF_MEMORY"
ERR_UNKNOWN_OP = "UNKNOWN_OP"
ERR_SERVER = "SERVER_ERROR"
ERR_UNREACHABLE = "UNREACHABLE"
ERR_CORRUPT = "CORRUPT"
ERR_TIMEOUT = "TIMEOUT"
ERR_BUSY = "SERVER_BUSY"


class PendingTable:
    """Outstanding request registry: req_id -> completion event."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._pending: Dict[int, Event] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def register(self, req_id: int) -> Event:
        """Create the completion event for an outgoing request id."""
        if req_id in self._pending:
            raise ValueError("duplicate outstanding req_id %d" % req_id)
        event = self.sim.event()
        self._pending[req_id] = event
        return event

    def complete(self, response: Response) -> bool:
        """Fire the waiter for this response; ``False`` if none is pending.

        Late responses (e.g. the waiter already failed over) are dropped,
        like packets for a closed connection.
        """
        event = self._pending.pop(response.req_id, None)
        if event is None:
            return False
        event.succeed(response)
        return True

    def fail(self, req_id: int, error: BaseException) -> bool:
        """Fail the waiter (e.g. destination unreachable)."""
        event = self._pending.pop(req_id, None)
        if event is None:
            return False
        event.fail(error)
        return True

    def forget(self, waiter: Event) -> bool:
        """Drop a waiter the caller no longer cares about.

        Used to abandon a fetch that lost a hedge race: the response, if
        it ever arrives, is then discarded as a late packet.  Returns
        ``False`` when the waiter already completed (or was never
        registered).  Linear in outstanding requests, which stays small.
        """
        for req_id, event in self._pending.items():
            if event is waiter:
                del self._pending[req_id]
                return True
        return False
