"""Typed operation results: :class:`OpResult` and :class:`ErrorCode`.

Replaces the stringly ``(ok, payload, error)`` tuples that used to thread
through every resilience scheme, the client, and the ARPE.  Wire-level
:class:`~repro.store.protocol.Response` objects still carry their error as
a string (that is the protocol); :meth:`ErrorCode.from_wire` maps it back
into the enum at the scheme boundary, so everything above the wire speaks
types.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Optional, Tuple, Union

from repro.common.payload import Payload


class ErrorCode(Enum):
    """Why an operation failed (``NONE`` for success)."""

    NONE = ""
    NOT_FOUND = "NOT_FOUND"
    OUT_OF_MEMORY = "OUT_OF_MEMORY"
    UNKNOWN_OP = "UNKNOWN_OP"
    SERVER_ERROR = "SERVER_ERROR"
    UNREACHABLE = "UNREACHABLE"
    CORRUPT = "CORRUPT"
    TIMEOUT = "TIMEOUT"
    SERVER_BUSY = "SERVER_BUSY"
    INTERNAL = "INTERNAL"

    @classmethod
    def from_wire(cls, error: str) -> "ErrorCode":
        """Map a wire error string to a code.

        Handles compound strings the schemes produce — comma-joined error
        sets from fan-out writes ("OUT_OF_MEMORY, UNREACHABLE") and
        annotated server errors ("SERVER_ERROR: boom") — by classifying on
        the first token.  Unrecognized strings become ``SERVER_ERROR``.
        """
        if not error:
            return cls.NONE
        token = error.split(",")[0].split(":")[0].strip()
        try:
            return cls(token)
        except ValueError:
            return cls.SERVER_ERROR

    @property
    def retryable(self) -> bool:
        """Whether a retry may plausibly succeed.

        Transient transport/integrity faults (a timed-out or partitioned
        request, a corrupted chunk) are worth retrying; semantic outcomes
        (miss, out of memory, unknown op) are not.
        """
        return self in _RETRYABLE

    def __str__(self) -> str:
        return self.value or "OK"


_RETRYABLE = frozenset(
    {
        ErrorCode.TIMEOUT,
        ErrorCode.UNREACHABLE,
        ErrorCode.CORRUPT,
        ErrorCode.SERVER_ERROR,
        ErrorCode.SERVER_BUSY,
    }
)


@dataclass(frozen=True)
class OpResult:
    """Outcome of one Set/Get through a resilience scheme.

    ``message`` preserves the full wire-level error text (which may be
    richer than the code, e.g. a joined error set from a chunk fan-out);
    ``error_text`` is the human-readable form callers should display.

    ``degraded`` lists brownout degradations that shaped this outcome
    (e.g. ``("first-k",)`` for a Get answered from the first k chunk
    arrivals, ``("async-ack",)`` for a Set acknowledged before its
    durable chunk repair finished).  Empty on full-fidelity results.
    """

    ok: bool
    value: Optional[Payload] = None
    error: ErrorCode = ErrorCode.NONE
    message: str = ""
    degraded: Tuple[str, ...] = ()

    @classmethod
    def success(cls, value: Optional[Payload] = None) -> "OpResult":
        """A successful outcome, optionally carrying the fetched payload."""
        return cls(ok=True, value=value)

    @classmethod
    def failure(
        cls, error: Union[ErrorCode, str], message: str = ""
    ) -> "OpResult":
        """A failed outcome.

        ``error`` may be an :class:`ErrorCode` or a wire error string (the
        string is classified via :meth:`ErrorCode.from_wire` and kept as
        the message).
        """
        if isinstance(error, ErrorCode):
            return cls(ok=False, error=error, message=message)
        return cls(
            ok=False, error=ErrorCode.from_wire(error), message=message or error
        )

    @classmethod
    def from_response(cls, response) -> "OpResult":
        """Lift a wire :class:`~repro.store.protocol.Response` to a result."""
        if response.ok:
            return cls.success(response.value)
        return cls.failure(response.error)

    def with_degraded(self, *modes: str) -> "OpResult":
        """Copy of this result annotated with brownout degradation modes."""
        if not modes:
            return self
        merged = self.degraded + tuple(
            mode for mode in modes if mode not in self.degraded
        )
        return replace(self, degraded=merged)

    @property
    def is_degraded(self) -> bool:
        """Whether brownout degradation shaped this outcome."""
        return bool(self.degraded)

    @property
    def error_text(self) -> str:
        """Human-readable error ('' on success)."""
        if self.ok:
            return ""
        return self.message or self.error.value

    def __bool__(self) -> bool:
        return self.ok
