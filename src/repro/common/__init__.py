"""Shared utilities: payload abstraction, statistics, deterministic RNG."""

from repro.common.payload import Payload
from repro.common.stats import LatencyRecorder, Summary, percentile

__all__ = ["LatencyRecorder", "Payload", "Summary", "percentile"]
