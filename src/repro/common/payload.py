"""Payload abstraction: real bytes or size-only descriptors.

The functional tests and examples push real bytes end-to-end (Set -> Get
round-trips the exact data; erasure decode reconstructs it).  The paper's
large experiments, however, move tens of gigabytes (e.g. Figure 10: 40
clients x 1 GB), which would exhaust host memory if every simulated value
held real bytes.  A :class:`Payload` therefore carries a mandatory size
and *optional* data; every timing path uses only the size, so results are
identical either way, and the resilience schemes do real coding whenever
data is present.
"""

from __future__ import annotations

import zlib
from typing import Optional


class Payload:
    """An immutable value of known size, with or without materialized bytes."""

    __slots__ = ("size", "data", "_checksum")

    def __init__(self, size: int, data: Optional[bytes] = None):
        if size < 0:
            raise ValueError("payload size must be >= 0")
        if data is not None and len(data) != size:
            raise ValueError(
                "data length %d does not match declared size %d"
                % (len(data), size)
            )
        self.size = size
        self.data = data
        self._checksum: Optional[int] = None

    @classmethod
    def from_bytes(cls, data: bytes) -> "Payload":
        """A payload carrying real bytes."""
        return cls(len(data), data)

    @classmethod
    def sized(cls, size: int) -> "Payload":
        """A size-only payload for timing/accounting-scale experiments."""
        return cls(size)

    @property
    def has_data(self) -> bool:
        """Whether real bytes are attached (vs size-only)."""
        return self.data is not None

    def checksum(self) -> Optional[int]:
        """CRC32 of the data, or ``None`` for size-only payloads.

        Cached: payloads are immutable, and replicated Sets hand the same
        object to several servers, each of which checksums it.
        """
        if self.data is None:
            return None
        if self._checksum is None:
            self._checksum = zlib.crc32(self.data)
        return self._checksum

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        return self.size == other.size and self.data == other.data

    def __hash__(self):  # pragma: no cover - payloads are not dict keys
        return hash((self.size, self.data))

    def __repr__(self) -> str:
        kind = "bytes" if self.has_data else "sized"
        return "Payload(%d, %s)" % (self.size, kind)
