"""Latency/throughput statistics helpers used by every experiment."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    value = ordered[low] * (1 - frac) + ordered[high] * frac
    # interpolation can exceed the endpoints by an ulp; clamp it
    return min(max(value, ordered[low]), ordered[high])


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a latency sample set (seconds)."""

    count: int
    mean: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float
    total: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Summary":
        """Summarize a non-empty sample list."""
        if not samples:
            raise ValueError("cannot summarize zero samples")
        total = sum(samples)
        return cls(
            count=len(samples),
            mean=total / len(samples),
            minimum=min(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            maximum=max(samples),
            total=total,
        )

    def scaled(self, factor: float) -> "Summary":
        """Unit conversion helper (e.g. seconds -> microseconds)."""
        return Summary(
            count=self.count,
            mean=self.mean * factor,
            minimum=self.minimum * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            maximum=self.maximum * factor,
            total=self.total * factor,
        )


class LatencyRecorder:
    """Accumulates per-operation latencies, grouped by operation kind."""

    def __init__(self):
        self._samples: Dict[str, List[float]] = {}

    def record(self, kind: str, latency: float) -> None:
        """Append one latency sample under ``kind``."""
        if latency < 0:
            raise ValueError("negative latency %r" % latency)
        self._samples.setdefault(kind, []).append(latency)

    def extend(self, kind: str, latencies: Iterable[float]) -> None:
        for value in latencies:
            self.record(kind, value)

    def kinds(self) -> List[str]:
        """Operation kinds seen so far."""
        return sorted(self._samples)

    def samples(self, kind: str) -> List[float]:
        """Copy of the samples recorded under ``kind``."""
        return list(self._samples.get(kind, []))

    def count(self, kind: str) -> int:
        """Number of samples recorded under ``kind``."""
        return len(self._samples.get(kind, []))

    def summary(self, kind: str) -> Summary:
        """Summary of one kind's samples."""
        return Summary.of(self._samples.get(kind, []))

    def merged_summary(self) -> Summary:
        """Summary across every kind."""
        merged: List[float] = []
        for samples in self._samples.values():
            merged.extend(samples)
        return Summary.of(merged)
