"""Dense matrix algebra over GF(2^8).

Matrices are small (at most ``(K+M) x K`` with K+M <= 32 in practice), so
these routines favour clarity over vectorization; the *data* path (chunk
encode/decode) is vectorized separately in the codecs.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ec import gf256

Matrix = List[List[int]]


class SingularMatrixError(ValueError):
    """Raised when a matrix that must be invertible is singular."""


def zeros(rows: int, cols: int) -> Matrix:
    """An all-zero rows x cols matrix."""
    return [[0] * cols for _ in range(rows)]


def identity(n: int) -> Matrix:
    """The n x n identity matrix."""
    eye = zeros(n, n)
    for i in range(n):
        eye[i][i] = 1
    return eye


def vandermonde(rows: int, cols: int) -> Matrix:
    """Classic Vandermonde matrix ``V[i][j] = i ** j`` over GF(2^8).

    Row i is the evaluation point ``i``; with distinct points every
    ``cols x cols`` submatrix is invertible, which is the MDS property
    Reed-Solomon relies on.
    """
    if rows > gf256.FIELD_SIZE:
        raise ValueError("at most 256 distinct evaluation points in GF(2^8)")
    return [[gf256.gf_pow(i, j) for j in range(cols)] for i in range(rows)]


def cauchy(rows: int, cols: int) -> Matrix:
    """Cauchy matrix ``C[i][j] = 1 / (x_i + y_j)`` over GF(2^8).

    Uses ``x_i = i`` and ``y_j = rows + j``; all entries are defined as
    long as ``rows + cols <= 256``, and every square submatrix of a Cauchy
    matrix is invertible.
    """
    if rows + cols > gf256.FIELD_SIZE:
        raise ValueError("need rows + cols <= 256 for distinct Cauchy points")
    out = zeros(rows, cols)
    for i in range(rows):
        for j in range(cols):
            out[i][j] = gf256.gf_inv(i ^ (rows + j))
    return out


def matmul(a: Matrix, b: Matrix) -> Matrix:
    """Matrix product over GF(2^8)."""
    rows, inner, cols = len(a), len(b), len(b[0])
    if len(a[0]) != inner:
        raise ValueError("matmul shape mismatch")
    out = zeros(rows, cols)
    for i in range(rows):
        arow = a[i]
        orow = out[i]
        for t in range(inner):
            coef = arow[t]
            if coef == 0:
                continue
            brow = b[t]
            for j in range(cols):
                orow[j] ^= gf256.gf_mul(coef, brow[j])
    return out


def submatrix(a: Matrix, row_indices: Sequence[int]) -> Matrix:
    """Pick the given rows (used to build decode matrices)."""
    return [list(a[i]) for i in row_indices]


def invert(a: Matrix) -> Matrix:
    """Gauss-Jordan inversion over GF(2^8).

    Raises :class:`SingularMatrixError` when no inverse exists; the codecs
    rely on this to detect non-MDS constructions early.
    """
    n = len(a)
    if any(len(row) != n for row in a):
        raise ValueError("invert() requires a square matrix")
    work = [list(row) for row in a]
    inv = identity(n)
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if work[r][col] != 0), None)
        if pivot_row is None:
            raise SingularMatrixError("matrix is singular at column %d" % col)
        if pivot_row != col:
            work[col], work[pivot_row] = work[pivot_row], work[col]
            inv[col], inv[pivot_row] = inv[pivot_row], inv[col]
        pivot_inv = gf256.gf_inv(work[col][col])
        if pivot_inv != 1:
            work[col] = [gf256.gf_mul(pivot_inv, v) for v in work[col]]
            inv[col] = [gf256.gf_mul(pivot_inv, v) for v in inv[col]]
        for r in range(n):
            if r == col:
                continue
            factor = work[r][col]
            if factor == 0:
                continue
            work[r] = [
                wv ^ gf256.gf_mul(factor, cv) for wv, cv in zip(work[r], work[col])
            ]
            inv[r] = [
                iv ^ gf256.gf_mul(factor, cv) for iv, cv in zip(inv[r], inv[col])
            ]
    return inv


def systematic_rs_matrix(n: int, k: int) -> Matrix:
    """Systematic MDS generator matrix from a Vandermonde seed.

    Build the ``n x k`` Vandermonde matrix, then right-multiply by the
    inverse of its top ``k x k`` block so the top becomes the identity.
    Row-space transformations preserve the any-k-rows-invertible (MDS)
    property, and the identity top means data chunks pass through
    unmodified — exactly how Jerasure's ``RS_Van`` behaves.
    """
    if k < 1 or n < k:
        raise ValueError("need 1 <= k <= n")
    vand = vandermonde(n, k)
    top_inv = invert([row[:] for row in vand[:k]])
    return matmul(vand, top_inv)
