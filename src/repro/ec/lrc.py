"""Locally Repairable Codes (Azure-style LRC) — the paper's future work.

Section VIII: "we plan to minimize our recovery overheads by incorporating
optimized erasure codes such as locally repairable codes".  An
LRC(K, L, R) splits the K data chunks into L local groups, adds one local
XOR parity per group, and R global Reed-Solomon parities:

- a *single* lost data chunk is repaired by XOR-ing its group — reading
  ``K/L`` chunks instead of ``K`` (the recovery win);
- larger failure patterns fall back to solving the full linear system
  using the global parities.

Unlike the MDS codes here, LRC is not any-K-of-N: decode picks a linearly
independent set of surviving rows.  Guaranteed fault tolerance is
computed exhaustively at construction (Azure's LRC(12, 2, 2) tolerates
any 3 failures; this construction reproduces that property for the
geometries the tests cover).

Chunk layout: ``[data 0..K-1 | local parities K..K+L-1 | globals ...]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ec import gf256, matrix
from repro.ec.base import ErasureCodec, ErasureCodingError
from repro.ec.matrix import SingularMatrixError


class LocalReconstructionCode(ErasureCodec):
    """LRC(K, L, R): K data, L local XOR parities, R global RS parities."""

    name = "lrc"

    def __init__(self, k: int, local_groups: int = 2, global_parities: int = 2):
        if local_groups < 1 or k % local_groups:
            raise ValueError(
                "k=%d must divide evenly into %d local groups"
                % (k, local_groups)
            )
        if global_parities < 0:
            raise ValueError("global_parities must be >= 0")
        self.local_groups = local_groups
        self.global_parities = global_parities
        self.group_size = k // local_groups
        super().__init__(k, local_groups + global_parities)
        self.generator = self._build_generator()
        self._parity_kernel = gf256.GFMatrix(self.generator[self.k :])
        self._tolerated: Optional[int] = None  # computed lazily (brute force)
        self._decode_cache: Dict[tuple, tuple] = {}

    @property
    def tolerated(self) -> int:
        """Guaranteed failures survived (computed exhaustively, cached)."""
        if self._tolerated is None:
            self._tolerated = self._max_guaranteed_failures()
        return self._tolerated

    @property
    def tolerated_failures(self) -> int:
        """LRC is not MDS: the guarantee is below L + R."""
        return self.tolerated

    # -- construction ---------------------------------------------------------
    def _build_generator(self) -> matrix.Matrix:
        """Rows: identity (data), local XOR rows, global parity rows.

        Global coefficients are found by a deterministic search for a
        *maximally recoverable* instance — one whose guaranteed tolerance
        reaches ``r + 1`` (Azure's LRC(12, 2, 2) tolerates any 3
        failures).  Candidate rows are Vandermonde-style powers of a
        shifting evaluation base; the first candidate set achieving the
        target tolerance wins, and the best seen is kept otherwise.
        """
        base_rows = matrix.identity(self.k)
        for group in range(self.local_groups):
            row = [0] * self.k
            start = group * self.group_size
            for j in range(start, start + self.group_size):
                row[j] = 1
            base_rows.append(row)
        if not self.global_parities:
            return base_rows

        target = self.global_parities + 1
        best_gen: Optional[matrix.Matrix] = None
        best_tolerance = -1
        for seed in range(1, 40):
            globals_rows = [
                [
                    gf256.gf_pow((seed + j) % 255 + 1, power + 1)
                    for j in range(self.k)
                ]
                for power in range(self.global_parities)
            ]
            candidate = [list(r) for r in base_rows] + globals_rows
            tolerance = _guaranteed_tolerance(
                candidate, self.k, self.n, cap=target
            )
            if tolerance > best_tolerance:
                best_tolerance = tolerance
                best_gen = candidate
            if tolerance >= target:
                break
        return best_gen

    def _max_guaranteed_failures(self) -> int:
        """Largest t such that every t-failure pattern is decodable."""
        return _guaranteed_tolerance(self.generator, self.k, self.n)

    def _solvable(self, survivor_indices: Sequence[int]) -> bool:
        rows = matrix.submatrix(self.generator, survivor_indices)
        return _gf_rank(rows) == self.k

    # -- group topology ----------------------------------------------------
    def group_of(self, data_index: int) -> int:
        """Local group a data chunk belongs to."""
        if not 0 <= data_index < self.k:
            raise ValueError("not a data chunk index: %d" % data_index)
        return data_index // self.group_size

    def local_parity_index(self, group: int) -> int:
        """Chunk index of a group's local XOR parity."""
        if not 0 <= group < self.local_groups:
            raise ValueError("no such group: %d" % group)
        return self.k + group

    def group_members(self, group: int) -> List[int]:
        """Data chunk indices of one local group."""
        start = group * self.group_size
        return list(range(start, start + self.group_size))

    def local_repair_sources(
        self, lost_index: int, available: Sequence[int]
    ) -> Optional[List[int]]:
        """The cheap repair set for one lost chunk, if it exists.

        For a data chunk: the rest of its group plus the group's local
        parity.  For a local parity: its group's data chunks.  Returns
        ``None`` when any needed chunk is also missing (fall back to
        global decode).
        """
        available_set = set(available)
        if lost_index < self.k:
            group = self.group_of(lost_index)
            needed = [
                i for i in self.group_members(group) if i != lost_index
            ] + [self.local_parity_index(group)]
        elif lost_index < self.k + self.local_groups:
            needed = self.group_members(lost_index - self.k)
        else:
            return None  # global parities need a full re-encode
        if all(i in available_set for i in needed):
            return needed
        return None

    def repair_chunk(
        self, lost_index: int, sources: Dict[int, bytes]
    ) -> bytes:
        """XOR-rebuild one chunk from its local repair sources."""
        expected = self.local_repair_sources(lost_index, list(sources))
        if expected is None or set(expected) != set(sources):
            raise ErasureCodingError(
                "sources %s are not the local repair set for chunk %d"
                % (sorted(sources), lost_index)
            )
        acc = None
        for data in sources.values():
            arr = np.frombuffer(data, dtype=np.uint8)
            acc = arr.copy() if acc is None else acc ^ arr
        return acc.tobytes()

    def can_decode(self, indices) -> bool:
        """Rank check: do these survivor rows span the data space?"""
        ordered = sorted(set(indices))
        if len(ordered) < self.k:
            return False
        return self._solvable(ordered)

    def decode_indices(self, available) -> Optional[List[int]]:
        """A linearly independent fetch plan from the survivors."""
        return _independent_subset(self.generator, sorted(set(available)), self.k)

    # -- coding ------------------------------------------------------------
    def _encode_parity_matrix(self, data_mat: np.ndarray) -> np.ndarray:
        return self._parity_kernel.apply(data_mat)

    def _decode_data(self, available: Dict[int, np.ndarray]):
        indices = tuple(sorted(available))
        if all(i in available for i in range(self.k)):
            return [available[i] for i in range(self.k)]
        chosen, kernel = self._decode_plan(indices)
        src = np.stack([available[i] for i in chosen])
        return kernel.apply(src)

    def _decode_plan(self, indices: tuple):
        """Pick K independent survivor rows and invert them (cached)."""
        cached = self._decode_cache.get(indices)
        if cached is None:
            chosen = _independent_subset(self.generator, indices, self.k)
            if chosen is None:
                raise ErasureCodingError(
                    "survivors %s cannot reconstruct the data" % (indices,)
                )
            inverse = matrix.invert(matrix.submatrix(self.generator, chosen))
            cached = (chosen, gf256.GFMatrix(inverse))
            self._decode_cache[indices] = cached
        return cached


def _guaranteed_tolerance(
    generator: matrix.Matrix, k: int, n: int, cap: Optional[int] = None
) -> int:
    """Largest t (up to ``cap``) with every t-erasure pattern decodable."""
    import itertools

    limit = cap if cap is not None else n - k + 1
    for t in range(1, limit + 1):
        for erased in itertools.combinations(range(n), t):
            survivors = [i for i in range(n) if i not in erased]
            if _gf_rank(matrix.submatrix(generator, survivors)) < k:
                return t - 1
    return limit


def _gf_rank(rows: matrix.Matrix) -> int:
    """Rank of a GF(2^8) matrix via forward elimination."""
    work = [list(r) for r in rows]
    nrows = len(work)
    ncols = len(work[0]) if work else 0
    rank = 0
    for col in range(ncols):
        pivot = next((r for r in range(rank, nrows) if work[r][col]), None)
        if pivot is None:
            continue
        work[rank], work[pivot] = work[pivot], work[rank]
        inv = gf256.gf_inv(work[rank][col])
        work[rank] = [gf256.gf_mul(inv, v) for v in work[rank]]
        for r in range(nrows):
            if r != rank and work[r][col]:
                factor = work[r][col]
                work[r] = [
                    a ^ gf256.gf_mul(factor, b)
                    for a, b in zip(work[r], work[rank])
                ]
        rank += 1
        if rank == min(nrows, ncols):
            break
    return rank


def _independent_subset(
    generator: matrix.Matrix, indices: Sequence[int], k: int
) -> Optional[List[int]]:
    """Greedily pick ``k`` indices whose generator rows are independent.

    Data rows come first (identity rows are always independent of each
    other), so the systematic chunks are reused maximally.
    """
    ordered = sorted(indices, key=lambda i: (i >= k, i))
    chosen: List[int] = []
    for index in ordered:
        candidate = chosen + [index]
        if _gf_rank(matrix.submatrix(generator, candidate)) == len(candidate):
            chosen.append(index)
            if len(chosen) == k:
                return chosen
    return None
