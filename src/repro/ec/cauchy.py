"""Cauchy Reed-Solomon (CRS) coding with bit-matrix XOR encoding.

Jerasure's CRS converts a Cauchy generator matrix over GF(2^w) into a
binary bit matrix and encodes with XORs of packets instead of field
multiplications.  That trade — more, cheaper operations — is why the
paper's Figure 4 shows CRS losing to plain RS-Vandermonde at key-value
sizes (1 KB - 1 MB) but winning at very large objects (~256 MB).
"""

from __future__ import annotations

import numpy as np

from repro.ec import bitmatrix, matrix
from repro.ec.bitcodec import BitMatrixCodec


class CauchyReedSolomon(BitMatrixCodec):
    """Systematic CRS(K, M) with ``w = 8`` bit-matrix encoding."""

    name = "crs"
    word_size = 8

    def _build_bit_generator(self) -> np.ndarray:
        w = self.word_size
        eye = np.eye(self.k * w, dtype=np.uint8)
        if not self.m:
            return eye
        # An m x k Cauchy matrix has every square submatrix invertible,
        # which gives the MDS property after binary expansion.
        cauchy_rows = matrix.cauchy(self.m, self.k)
        parity_bits = bitmatrix.matrix_to_bitmatrix(cauchy_rows, w)
        return np.concatenate([eye, parity_bits], axis=0)
