"""Minimum-density RAID-6 bit-matrix code in the style of Liberation codes.

Plank's Liberation codes (the ``R6-Lib`` scheme in the paper's Figure 4)
are RAID-6 (M = 2) bit-matrix codes whose Q-parity matrices are cyclic
shifts of the identity plus a single extra bit each — the provably minimal
number of ones for an MDS RAID-6 bit matrix.  We construct an equivalent
minimum-density code deterministically: the P parity is the XOR of all
data blocks (all-identity row), and the Q blocks are ``X_0 = I`` and
``X_i = S^i + e(r, c)`` where the extra bit is found by an ordered
backtracking search subject to the RAID-6 MDS conditions:

- every ``X_i`` is invertible, and
- ``X_i XOR X_j`` is invertible for every pair ``i != j``.

The search is deterministic, so the generator matrix is identical on every
run; construction also verifies full decodability of all single and double
erasure patterns.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ec import bitmatrix
from repro.ec.bitcodec import BitMatrixCodec
from repro.ec.matrix import SingularMatrixError

_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31)


def _default_word_size(k: int) -> int:
    """Smallest prime ``w >= max(k, 3)`` — the Liberation validity range."""
    for prime in _PRIMES:
        if prime >= max(k, 3):
            return prime
    raise ValueError("k=%d too large for Liberation construction" % k)


def _invertible(mat: np.ndarray) -> bool:
    return bitmatrix.bitmatrix_rank(mat) == mat.shape[0]


class LiberationRaid6(BitMatrixCodec):
    """RAID-6 (K, 2) minimum-density bit-matrix codec."""

    name = "r6_lib"

    def __init__(self, k: int, m: int = 2, word_size: Optional[int] = None):
        if m != 2:
            raise ValueError("Liberation codes are RAID-6 only (m must be 2)")
        self.word_size = word_size or _default_word_size(k)
        if self.word_size < k:
            raise ValueError(
                "word size w=%d must be >= k=%d" % (self.word_size, k)
            )
        super().__init__(k, m)

    def _build_bit_generator(self) -> np.ndarray:
        w, k = self.word_size, self.k
        q_blocks = self._search_q_blocks()
        eye_block = np.eye(w, dtype=np.uint8)
        p_row = np.concatenate([eye_block] * k, axis=1)
        q_row = np.concatenate(q_blocks, axis=1)
        generator = np.concatenate(
            [np.eye(k * w, dtype=np.uint8), p_row, q_row], axis=0
        )
        self._verify_mds(generator)
        return generator

    def _search_q_blocks(self) -> List[np.ndarray]:
        """Choose the Q-parity blocks by ordered backtracking.

        ``X_0 = I``; each later block is a shifted identity plus one extra
        bit, scanned in row-major order.  A candidate is accepted when it
        is invertible and its XOR with every previously chosen block is
        invertible — the exact pairwise conditions under which a RAID-6
        bit-matrix code is MDS.
        """
        w, k = self.word_size, self.k
        blocks: List[np.ndarray] = [np.eye(w, dtype=np.uint8)]
        positions = [0] * k  # resume point per level, for backtracking

        level = 1
        while level < k:
            shifted = bitmatrix.shift_identity(w, level)
            found = False
            for flat in range(positions[level], w * w):
                r, c = divmod(flat, w)
                candidate = shifted.copy()
                candidate[r, c] ^= 1
                if not _invertible(candidate):
                    continue
                if all(_invertible(candidate ^ prev) for prev in blocks):
                    blocks.append(candidate)
                    positions[level] = flat + 1
                    found = True
                    break
            if found:
                level += 1
                if level < k:
                    positions[level] = 0
            else:
                # Dead end: retract the previous choice and resume its scan.
                if level == 1:
                    raise SingularMatrixError(
                        "no minimum-density RAID-6 code for k=%d, w=%d"
                        % (k, w)
                    )
                positions[level] = 0
                blocks.pop()
                level -= 1
        return blocks

    def _verify_mds(self, generator: np.ndarray) -> None:
        """Check every <=2-erasure pattern decodes (belt and braces)."""
        w, k, n = self.word_size, self.k, self.n
        for erased_a in range(n):
            for erased_b in range(erased_a, n):
                survivors = [
                    i for i in range(n) if i not in (erased_a, erased_b)
                ][:k]
                row_ids = [i * w + b for i in survivors for b in range(w)]
                if not _invertible(generator[row_ids]):
                    raise SingularMatrixError(
                        "construction not MDS for erasures (%d, %d)"
                        % (erased_a, erased_b)
                    )
