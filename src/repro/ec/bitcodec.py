"""Shared machinery for bit-matrix (XOR-only) codecs.

Both Cauchy-RS and the Liberation RAID-6 code encode by XOR-combining
*packets* according to a binary generator matrix; they differ only in how
that matrix is constructed.  This base class owns the packetization,
encode/decode loops, and per-erasure-pattern decode-matrix caching.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.ec import bitmatrix
from repro.ec.base import ErasureCodec


class BitMatrixCodec(ErasureCodec):
    """Erasure codec driven by a binary generator matrix.

    Subclasses must set ``word_size`` (packets per chunk) and build
    ``bit_generator``: an ``(n * w) x (k * w)`` binary matrix whose top
    ``k * w`` rows are the identity (systematic form).
    """

    word_size: int = 8

    def __init__(self, k: int, m: int):
        super().__init__(k, m)
        self.chunk_alignment = self.word_size
        self.bit_generator = self._build_bit_generator()
        expected = ((self.n * self.word_size), (k * self.word_size))
        if self.bit_generator.shape != expected:
            raise ValueError(
                "bit generator shape %s, expected %s"
                % (self.bit_generator.shape, expected)
            )
        self._decode_cache: Dict[tuple, np.ndarray] = {}

    def _build_bit_generator(self) -> np.ndarray:
        raise NotImplementedError

    # -- coding ------------------------------------------------------------
    def _encode_parity(self, data_chunks: List[np.ndarray]) -> List[np.ndarray]:
        w = self.word_size
        packets: List[np.ndarray] = []
        for chunk in data_chunks:
            packets.extend(bitmatrix.chunk_to_packets(chunk, w))
        parity_rows = self.bit_generator[self.k * w :]
        parity_packets = bitmatrix.encode_packets(parity_rows, packets)
        return [
            bitmatrix.packets_to_chunk(parity_packets[i * w : (i + 1) * w])
            for i in range(self.m)
        ]

    def _decode_data(self, available: Dict[int, np.ndarray]) -> List[np.ndarray]:
        # MDS: any K chunks work, so take the K lowest indices.
        indices = tuple(sorted(available)[: self.k])
        w = self.word_size
        if indices == tuple(range(self.k)):
            return [available[i] for i in range(self.k)]
        inverse = self._decode_matrix(indices)
        packets: List[np.ndarray] = []
        for idx in indices:
            packets.extend(bitmatrix.chunk_to_packets(available[idx], w))
        data_packets = bitmatrix.encode_packets(inverse, packets)
        return [
            bitmatrix.packets_to_chunk(data_packets[i * w : (i + 1) * w])
            for i in range(self.k)
        ]

    def _decode_matrix(self, indices: tuple) -> np.ndarray:
        """Inverse of the surviving block-rows, cached per erasure pattern."""
        cached = self._decode_cache.get(indices)
        if cached is None:
            w = self.word_size
            row_ids = [i * w + b for i in indices for b in range(w)]
            survivor_rows = self.bit_generator[row_ids]
            cached = bitmatrix.bitmatrix_invert(survivor_rows)
            self._decode_cache[indices] = cached
        return cached
