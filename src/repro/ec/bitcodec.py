"""Shared machinery for bit-matrix (XOR-only) codecs.

Both Cauchy-RS and the Liberation RAID-6 code encode by XOR-combining
*packets* according to a binary generator matrix; they differ only in how
that matrix is constructed.  This base class owns the packetization,
encode/decode loops, and per-erasure-pattern decode-matrix caching.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.ec import bitmatrix
from repro.ec.base import ErasureCodec


class BitMatrixCodec(ErasureCodec):
    """Erasure codec driven by a binary generator matrix.

    Subclasses must set ``word_size`` (packets per chunk) and build
    ``bit_generator``: an ``(n * w) x (k * w)`` binary matrix whose top
    ``k * w`` rows are the identity (systematic form).
    """

    word_size: int = 8

    def __init__(self, k: int, m: int):
        super().__init__(k, m)
        self.chunk_alignment = self.word_size
        self.bit_generator = self._build_bit_generator()
        expected = ((self.n * self.word_size), (k * self.word_size))
        if self.bit_generator.shape != expected:
            raise ValueError(
                "bit generator shape %s, expected %s"
                % (self.bit_generator.shape, expected)
            )
        self._parity_selections = bitmatrix.compile_selections(
            self.bit_generator[k * self.word_size :]
        )
        self._decode_cache: Dict[tuple, List[np.ndarray]] = {}

    def _build_bit_generator(self) -> np.ndarray:
        raise NotImplementedError

    # -- coding ------------------------------------------------------------
    def _packetize(self, mat: np.ndarray) -> np.ndarray:
        """Zero-copy reshape of a chunk matrix into its packet matrix.

        Each ``(row, size)`` chunk splits into ``w`` consecutive packets,
        so ``(rows, size) -> (rows * w, size // w)`` is exactly Jerasure's
        packet layout with no data movement.
        """
        rows, size = mat.shape
        w = self.word_size
        return mat.reshape(rows * w, size // w)

    def _encode_parity_matrix(self, data_mat: np.ndarray) -> np.ndarray:
        parity_packets = bitmatrix.apply_selections(
            self._parity_selections, self._packetize(data_mat)
        )
        return parity_packets.reshape(self.m, -1)

    def _decode_data(self, available: Dict[int, np.ndarray]):
        # MDS: any K chunks work, so take the K lowest indices.
        indices = tuple(sorted(available)[: self.k])
        if indices == tuple(range(self.k)):
            return [available[i] for i in range(self.k)]
        selections = self._decode_matrix(indices)
        src = np.stack([available[i] for i in indices])
        data_packets = bitmatrix.apply_selections(
            selections, self._packetize(src)
        )
        return data_packets.reshape(self.k, -1)

    def _decode_matrix(self, indices: tuple) -> List[np.ndarray]:
        """Compiled inverse of the surviving block-rows, cached per pattern."""
        cached = self._decode_cache.get(indices)
        if cached is None:
            w = self.word_size
            row_ids = [i * w + b for i in indices for b in range(w)]
            survivor_rows = self.bit_generator[row_ids]
            cached = bitmatrix.compile_selections(
                bitmatrix.bitmatrix_invert(survivor_rows)
            )
            self._decode_cache[indices] = cached
        return cached
