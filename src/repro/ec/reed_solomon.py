"""Reed-Solomon coding with a (systematized) Vandermonde matrix.

This is Jerasure's ``RS_Van`` — the code the paper selects for online
erasure coding of 1 KB - 1 MB key-value pairs (Section III-B, Figure 4).
Encoding multiplies the K data chunks by the M parity rows of a systematic
generator matrix; decoding inverts the K x K submatrix of generator rows
corresponding to the surviving chunks.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ec import gf256, matrix
from repro.ec.base import ErasureCodec


class ReedSolomonVandermonde(ErasureCodec):
    """Systematic RS(K, M) over GF(2^8) built from a Vandermonde seed."""

    name = "rs_van"

    def __init__(self, k: int, m: int):
        super().__init__(k, m)
        self.generator = matrix.systematic_rs_matrix(self.n, k)
        self._parity_kernel = gf256.GFMatrix(self.generator[self.k :])
        self._decode_cache: Dict[tuple, gf256.GFMatrix] = {}

    def _encode_parity_matrix(self, data_mat: np.ndarray) -> np.ndarray:
        return self._parity_kernel.apply(data_mat)

    def _decode_data(self, available: Dict[int, np.ndarray]):
        # MDS: any K chunks work, so take the K lowest indices.
        indices = tuple(sorted(available)[: self.k])
        if indices == tuple(range(self.k)):
            # All data chunks survived: systematic fast path, no math.
            return [available[i] for i in range(self.k)]
        kernel = self._decode_matrix(indices)
        src = np.stack([available[i] for i in indices])
        return kernel.apply(src)

    def _decode_matrix(self, indices: tuple) -> gf256.GFMatrix:
        """Kernel for the inverse of the surviving chunks' generator rows.

        Cached per erasure pattern: a workload that repeatedly reads during
        the same failure scenario (Figure 8(c)) pays the inversion (and the
        kernel's table compilation) once, mirroring how Jerasure callers
        cache decoding matrices.
        """
        cached = self._decode_cache.get(indices)
        if cached is None:
            rows = matrix.submatrix(self.generator, indices)
            cached = gf256.GFMatrix(matrix.invert(rows))
            self._decode_cache[indices] = cached
        return cached
