"""Reed-Solomon coding with a (systematized) Vandermonde matrix.

This is Jerasure's ``RS_Van`` — the code the paper selects for online
erasure coding of 1 KB - 1 MB key-value pairs (Section III-B, Figure 4).
Encoding multiplies the K data chunks by the M parity rows of a systematic
generator matrix; decoding inverts the K x K submatrix of generator rows
corresponding to the surviving chunks.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.ec import gf256, matrix
from repro.ec.base import ErasureCodec


class ReedSolomonVandermonde(ErasureCodec):
    """Systematic RS(K, M) over GF(2^8) built from a Vandermonde seed."""

    name = "rs_van"

    def __init__(self, k: int, m: int):
        super().__init__(k, m)
        self.generator = matrix.systematic_rs_matrix(self.n, k)
        self._decode_cache: Dict[tuple, matrix.Matrix] = {}

    def _encode_parity(self, data_chunks: List[np.ndarray]) -> List[np.ndarray]:
        chunk_size = data_chunks[0].size
        parity = []
        for row in self.generator[self.k :]:
            acc = np.zeros(chunk_size, dtype=np.uint8)
            for coef, chunk in zip(row, data_chunks):
                gf256.addmul_bytes(acc, coef, chunk)
            parity.append(acc)
        return parity

    def _decode_data(self, available: Dict[int, np.ndarray]) -> List[np.ndarray]:
        # MDS: any K chunks work, so take the K lowest indices.
        indices = tuple(sorted(available)[: self.k])
        if indices == tuple(range(self.k)):
            # All data chunks survived: systematic fast path, no math.
            return [available[i] for i in range(self.k)]
        decode_matrix = self._decode_matrix(indices)
        chunk_size = available[indices[0]].size
        out = []
        for row in decode_matrix:
            acc = np.zeros(chunk_size, dtype=np.uint8)
            for coef, idx in zip(row, indices):
                gf256.addmul_bytes(acc, coef, available[idx])
            out.append(acc)
        return out

    def _decode_matrix(self, indices: tuple) -> matrix.Matrix:
        """Inverse of the generator rows for the surviving chunk indices.

        Cached per erasure pattern: a workload that repeatedly reads during
        the same failure scenario (Figure 8(c)) pays the inversion once,
        mirroring how Jerasure callers cache decoding matrices.
        """
        cached = self._decode_cache.get(indices)
        if cached is None:
            rows = matrix.submatrix(self.generator, indices)
            cached = matrix.invert(rows)
            self._decode_cache[indices] = cached
        return cached
