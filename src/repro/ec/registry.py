"""Name-based codec construction (mirrors picking a code in Jerasure)."""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.ec.base import ErasureCodec
from repro.ec.cauchy import CauchyReedSolomon
from repro.ec.fountain import FountainLT
from repro.ec.liberation import LiberationRaid6
from repro.ec.lrc import LocalReconstructionCode
from repro.ec.reed_solomon import ReedSolomonVandermonde

_CODECS: Dict[str, Type[ErasureCodec]] = {
    ReedSolomonVandermonde.name: ReedSolomonVandermonde,
    CauchyReedSolomon.name: CauchyReedSolomon,
    LiberationRaid6.name: LiberationRaid6,
    FountainLT.name: FountainLT,
}

_ALIASES = {
    "rs": "rs_van",
    "reed_solomon": "rs_van",
    "cauchy": "crs",
    "liberation": "r6_lib",
    "fountain": "lt",
}

# Codec instances are stateless after construction, and Liberation runs a
# backtracking search at build time — cache by (name, k, m).
_INSTANCE_CACHE: Dict[Tuple[str, int, int], ErasureCodec] = {}


def available_codecs() -> Tuple[str, ...]:
    """Canonical names of every registered codec."""
    return tuple(sorted(_CODECS)) + ("lrc",)


def make_codec(name: str, k: int, m: int) -> ErasureCodec:
    """Build (or fetch a cached) codec by registry name.

    Accepts the canonical names (``rs_van``, ``crs``, ``r6_lib``) plus a
    few human-friendly aliases.
    """
    canonical = _ALIASES.get(name.lower(), name.lower())
    key = (canonical, k, m)
    cached = _INSTANCE_CACHE.get(key)
    if cached is not None:
        return cached
    if canonical == "lrc":
        # m is total parities: 2 local groups + (m - 2) global parities.
        if m < 3:
            raise ValueError("lrc needs m >= 3 (2 local + >=1 global)")
        codec = LocalReconstructionCode(
            k, local_groups=2, global_parities=m - 2
        )
        _INSTANCE_CACHE[key] = codec
        return codec
    try:
        cls = _CODECS[canonical]
    except KeyError:
        raise KeyError(
            "unknown codec %r (available: %s)" % (name, ", ".join(available_codecs()))
        )
    codec = cls(k, m)
    _INSTANCE_CACHE[key] = codec
    return codec
