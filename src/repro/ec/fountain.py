"""Systematic LT (Luby Transform) fountain code — paper future work.

Section VIII: "... and explore ... linear time fountain codes".  A
fountain code generates coded symbols as XORs of random data-chunk
subsets; decoding *peels*: a coded symbol covering exactly one unknown
chunk reveals it, which may reduce other symbols to degree one, and so
on.  Peeling touches each byte O(1) times — the "linear time" appeal.

Classic LT is rateless with probabilistic decoding, and whole-chunk XOR
codes *cannot* be MDS for more than one parity (binary MDS codes beyond
simple parity do not exist) — the fountain trade is extra storage for
dirt-cheap XOR coding.  This codec fixes ``m`` coded chunks whose
neighbourhoods come from a (robust-)soliton-inspired degree distribution
chosen by a deterministic seeded search that maximizes the *verified*
guaranteed tolerance (every erasure pattern up to that size decodes;
checked exhaustively at construction).  ``tolerated_failures`` reports
that verified guarantee — typically ``m - 1`` — and
:meth:`decode_success_rate` quantifies the probabilistic regime beyond
it.  Decoding prefers the linear-time peeler and falls back to binary
Gaussian elimination for the rare patterns peeling alone cannot finish.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ec.base import ErasureCodec, ErasureCodingError
from repro.store.hashring import stable_hash


def _degree_sequence(k: int, m: int, seed: int) -> List[int]:
    """Coded-symbol degrees: soliton-flavoured, deterministic per seed.

    The ideal soliton puts most mass on small degrees; we keep degree >= 2
    (degree-1 coded symbols would just duplicate a data chunk) and include
    one high-degree symbol to cover the tail, mirroring the robust
    soliton's spike.
    """
    degrees = []
    for i in range(m):
        h = stable_hash("lt-deg-%d-%d-%d" % (seed, k, i))
        if i == m - 1:
            degrees.append(k)  # the high-degree "spike" covers everyone
        else:
            # favour 2 and 3 like the soliton's 1/(d(d-1)) decay
            roll = h % 100
            if roll < 55:
                degrees.append(2)
            elif roll < 85:
                degrees.append(min(3, k))
            else:
                degrees.append(min(4 + h % 3, k))
    return degrees


def _neighbourhoods(k: int, m: int, seed: int) -> List[Tuple[int, ...]]:
    """Choose each coded symbol's data-chunk subset deterministically."""
    out = []
    for i, degree in enumerate(_degree_sequence(k, m, seed)):
        chosen: List[int] = []
        cursor = 0
        while len(chosen) < degree:
            h = stable_hash("lt-nb-%d-%d-%d-%d" % (seed, k, i, cursor))
            candidate = h % k
            if candidate not in chosen:
                chosen.append(candidate)
            cursor += 1
        out.append(tuple(sorted(chosen)))
    return out


class FountainLT(ErasureCodec):
    """Fixed-rate systematic LT code with guaranteed m-failure recovery."""

    name = "lt"

    def __init__(self, k: int, m: int, max_seeds: int = 60):
        if m < 1:
            raise ValueError("fountain code needs at least one coded chunk")
        super().__init__(k, m)
        self.neighbourhoods, self.guaranteed = self._search_neighbourhoods(
            max_seeds
        )

    @property
    def tolerated_failures(self) -> int:
        """The exhaustively *verified* guarantee (< m for XOR codes)."""
        return self.guaranteed

    def can_decode(self, indices) -> bool:
        """Rank check over the survivor rows (LT is not any-K-of-N)."""
        ordered = sorted(set(indices))
        if len(ordered) < self.k:
            return False
        return self._rank_sufficient(self.neighbourhoods, ordered)

    def decode_indices(self, available) -> Optional[List[int]]:
        """All survivors (the peeler decides what it needs), or None."""
        ordered = sorted(set(available))
        if not self.can_decode(ordered):
            return None
        return ordered

    def decode_success_rate(self, failures: int) -> float:
        """Fraction of ``failures``-erasure patterns that decode."""
        total = 0
        good = 0
        for erased in itertools.combinations(range(self.n), failures):
            survivors = [i for i in range(self.n) if i not in erased]
            total += 1
            if self._rank_sufficient(self.neighbourhoods, survivors):
                good += 1
        return good / total if total else 1.0

    # -- construction ---------------------------------------------------------
    def _search_neighbourhoods(
        self, max_seeds: int
    ) -> Tuple[List[Tuple[int, ...]], int]:
        best: Optional[List[Tuple[int, ...]]] = None
        best_guarantee = -1
        for seed in range(max_seeds):
            candidate = _neighbourhoods(self.k, self.m, seed)
            guarantee = self._guaranteed_tolerance(candidate)
            if guarantee > best_guarantee:
                best, best_guarantee = candidate, guarantee
            if guarantee >= self.m - 1:
                break  # the best an XOR code can generally do
        if best is None or best_guarantee < 1:
            raise ErasureCodingError(
                "no LT neighbourhood set tolerates even one failure "
                "for k=%d, m=%d within %d seeds" % (self.k, self.m, max_seeds)
            )
        return best, best_guarantee

    def _guaranteed_tolerance(
        self, neighbourhoods: Sequence[Tuple[int, ...]]
    ) -> int:
        for t in range(1, self.m + 1):
            for erased in itertools.combinations(range(self.n), t):
                survivors = [i for i in range(self.n) if i not in erased]
                if not self._rank_sufficient(neighbourhoods, survivors):
                    return t - 1
        return self.m

    def _rank_sufficient(
        self, neighbourhoods: Sequence[Tuple[int, ...]], survivors: Sequence[int]
    ) -> bool:
        rows = []
        for index in survivors:
            row = np.zeros(self.k, dtype=np.uint8)
            if index < self.k:
                row[index] = 1
            else:
                for j in neighbourhoods[index - self.k]:
                    row[j] = 1
            rows.append(row)
        from repro.ec.bitmatrix import bitmatrix_rank

        return bitmatrix_rank(np.array(rows, dtype=np.uint8)) == self.k

    # -- coding ------------------------------------------------------------
    def _encode_parity(self, data_chunks: List[np.ndarray]) -> List[np.ndarray]:
        parity = []
        for neighbourhood in self.neighbourhoods:
            acc = data_chunks[neighbourhood[0]].copy()
            for j in neighbourhood[1:]:
                np.bitwise_xor(acc, data_chunks[j], out=acc)
            parity.append(acc)
        return parity

    def _decode_data(self, available: Dict[int, np.ndarray]) -> List[np.ndarray]:
        known: Dict[int, np.ndarray] = {
            i: available[i] for i in available if i < self.k
        }
        if len(known) == self.k:
            return [known[i] for i in range(self.k)]

        # Peeling: reduce coded symbols by everything already known, then
        # repeatedly release degree-one symbols (linear time).
        pending: List[Tuple[set, np.ndarray]] = []
        for index in sorted(available):
            if index < self.k:
                continue
            cover = set(self.neighbourhoods[index - self.k])
            acc = available[index].copy()
            for j in list(cover):
                if j in known:
                    np.bitwise_xor(acc, known[j], out=acc)
                    cover.discard(j)
            if cover:
                pending.append((cover, acc))

        progress = True
        while progress and len(known) < self.k:
            progress = False
            for cover, acc in pending:
                newly_known = [j for j in cover if j in known]
                for j in newly_known:
                    np.bitwise_xor(acc, known[j], out=acc)
                    cover.discard(j)
                if len(cover) == 1:
                    (j,) = cover
                    known[j] = acc.copy()
                    cover.clear()
                    progress = True
            pending = [(c, a) for c, a in pending if c]

        if len(known) < self.k:
            self._gaussian_fallback(known, pending)
        if len(known) < self.k:
            raise ErasureCodingError(
                "fountain decode failed with survivors %s"
                % sorted(available)
            )
        return [known[i] for i in range(self.k)]

    def _gaussian_fallback(
        self,
        known: Dict[int, np.ndarray],
        pending: List[Tuple[set, np.ndarray]],
    ) -> None:
        """Binary elimination over the unresolved symbols (rare path)."""
        unknown = sorted(set(range(self.k)) - set(known))
        col_of = {j: c for c, j in enumerate(unknown)}
        rows: List[Tuple[np.ndarray, np.ndarray]] = []
        for cover, acc in pending:
            mask = np.zeros(len(unknown), dtype=np.uint8)
            for j in cover:
                mask[col_of[j]] = 1
            rows.append((mask, acc.copy()))

        solved_cols: List[int] = []
        for col in range(len(unknown)):
            pivot = next(
                (r for r in range(len(solved_cols), len(rows)) if rows[r][0][col]),
                None,
            )
            if pivot is None:
                continue
            target = len(solved_cols)
            rows[target], rows[pivot] = rows[pivot], rows[target]
            pivot_mask, pivot_acc = rows[target]
            for r in range(len(rows)):
                if r != target and rows[r][0][col]:
                    np.bitwise_xor(rows[r][0], pivot_mask, out=rows[r][0])
                    np.bitwise_xor(rows[r][1], pivot_acc, out=rows[r][1])
            solved_cols.append(col)
        for mask, acc in rows:
            set_cols = np.flatnonzero(mask)
            if len(set_cols) == 1:
                known[unknown[int(set_cols[0])]] = acc

    # -- introspection --------------------------------------------------------
    def average_degree(self) -> float:
        """Mean coded-symbol degree — the decode-cost driver for LT."""
        return sum(len(n) for n in self.neighbourhoods) / self.m
