"""Codec interface shared by all erasure codes in this package."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.ec import gf256


def _prime_large_alloc_reuse() -> None:
    """Teach glibc to serve MiB-scale coding buffers from the heap.

    glibc only raises its dynamic mmap threshold when an mmap-backed
    block is *freed*.  The zero-copy encode path never frees a large
    block, so without this nudge every multi-MiB decode temporary is
    mmapped and munmapped per call — ~500 minor page faults per 1 MiB
    decode, a measured ~3x throughput loss.  Allocating and freeing one
    big block at import makes all later coding temporaries reuse warm
    heap pages.  Harmless (one transient allocation) on other mallocs.
    """
    buf = bytearray(8 << 20)
    del buf


_prime_large_alloc_reuse()


class ErasureCodingError(Exception):
    """Raised on unrecoverable coding situations (e.g. fewer than K chunks)."""


@dataclass
class ChunkSet:
    """The output of an encode: K data + M parity chunks plus metadata.

    ``chunks[i]`` for ``i < k`` are the data chunks (systematic codes pass
    data through unchanged); ``chunks[i]`` for ``i >= k`` are parity.
    Chunks are bytes-like (``memoryview`` slices of the padded value and
    of the parity block — encode never copies per chunk); call
    ``bytes(chunk)`` if an owning copy is needed.  ``data_len`` records
    the unpadded original length so decode can strip the zero padding of
    the last data chunk.
    """

    k: int
    m: int
    data_len: int
    chunks: List[bytes] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Total chunks (data + parity)."""
        return self.k + self.m

    @property
    def chunk_size(self) -> int:
        """Bytes per chunk."""
        return len(self.chunks[0]) if self.chunks else 0

    def subset(self, indices) -> Dict[int, bytes]:
        """Pick the chunks at ``indices`` — models surviving fragments."""
        return {i: self.chunks[i] for i in indices}


def pad_data(data: bytes, k: int, alignment: int = 1) -> bytes:
    """``data`` zero-padded to K equal chunks of the aligned chunk size.

    Returns ``data`` itself (no copy) when it already divides evenly; a
    single concatenation otherwise.  ``alignment`` rounds the chunk size
    up to a multiple (bit-matrix codecs need chunks divisible into ``w``
    packets).  An empty value still produces K minimal chunks so that the
    chunk bookkeeping (one fragment per server) stays uniform.
    """
    chunk_size = max(1, -(-len(data) // k))  # ceil division, min 1 byte
    if chunk_size % alignment:
        chunk_size += alignment - (chunk_size % alignment)
    total = chunk_size * k
    if len(data) == total:
        return data
    return data + bytes(total - len(data))


def split_matrix(data: bytes, k: int, alignment: int = 1) -> np.ndarray:
    """View ``data`` as a zero-copy ``(k, chunk_size)`` uint8 matrix.

    Pads first via :func:`pad_data` (itself a no-op when the value
    already divides evenly); the returned rows are the K data chunks.
    """
    padded = pad_data(data, k, alignment)
    return np.frombuffer(padded, dtype=np.uint8).reshape(k, -1)


def split_data(data: bytes, k: int, alignment: int = 1) -> List[np.ndarray]:
    """Split ``data`` into K equal uint8 chunks, zero-padding the tail.

    Row views of :func:`split_matrix` — kept for callers that want a
    list; the matrix form feeds the blocked GF kernels directly.
    """
    mat = split_matrix(data, k, alignment)
    return [mat[i] for i in range(k)]


class ErasureCodec(ABC):
    """Systematic (K, M) erasure codec over bytes.

    ``encode`` produces ``k + m`` equal-sized chunks; ``decode``
    reconstructs the original value from *any* ``k`` of them.  Subclasses
    implement the parity generation and the reconstruction math; padding
    and chunk bookkeeping live here.
    """

    #: registry name, e.g. ``"rs_van"``; set by subclasses.
    name: str = ""

    #: chunk sizes are rounded up to a multiple of this (bit-matrix codecs
    #: set it to their word size ``w`` so chunks divide into packets).
    chunk_alignment: int = 1

    def __init__(self, k: int, m: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        if m < 0:
            raise ValueError("m must be >= 0")
        if k + m > gf256.FIELD_SIZE:
            raise ValueError("k + m must be <= 256 for GF(2^8) codes")
        self.k = k
        self.m = m

    @property
    def n(self) -> int:
        """Total chunks (data + parity)."""
        return self.k + self.m

    @property
    def storage_overhead(self) -> float:
        """Stored bytes per data byte: N/K (paper Section I-A)."""
        return self.n / self.k

    @property
    def tolerated_failures(self) -> int:
        """Simultaneous chunk losses survived (M for MDS codes)."""
        return self.m

    def can_decode(self, indices) -> bool:
        """Whether the given chunk indices suffice to reconstruct the data.

        MDS codes need any K; non-MDS codes (LRC) override this with a
        rank check.
        """
        return len(set(indices)) >= self.k

    def decode_indices(self, available) -> Optional[List[int]]:
        """A decodable subset of ``available`` indices (fetch plan).

        Returns ``None`` when the survivors cannot reconstruct the data.
        MDS codes take the K lowest indices; non-MDS codes override.
        """
        indices = sorted(set(available))
        if len(indices) < self.k:
            return None
        return indices[: self.k]

    def chunk_length(self, data_len: int) -> int:
        """Size of each of the K+M chunks for a ``data_len``-byte value.

        Matches :func:`split_data`'s padding, so size-only payloads get
        byte-identical accounting to real encodes.
        """
        size = max(1, -(-data_len // self.k))
        if size % self.chunk_alignment:
            size += self.chunk_alignment - (size % self.chunk_alignment)
        return size

    def encode(self, data: bytes) -> ChunkSet:
        """Encode ``data`` into a :class:`ChunkSet` of K+M chunks.

        Zero-copy data plane: the value is padded at most once
        (:func:`pad_data` is a no-op when it divides evenly), the K data
        chunks are ``memoryview`` slices of that buffer, and parity rows
        are views of the kernel's single output block.
        """
        padded = pad_data(data, self.k, self.chunk_alignment)
        size = len(padded) // self.k
        data_mat = np.frombuffer(padded, dtype=np.uint8).reshape(self.k, size)
        parity = self._encode_parity_matrix(data_mat)
        if len(parity) != self.m:
            raise ErasureCodingError(
                "%s produced %d parity chunks, expected %d"
                % (type(self).__name__, len(parity), self.m)
            )
        view = memoryview(padded)
        chunks: List[bytes] = [
            view[i * size : (i + 1) * size] for i in range(self.k)
        ]
        chunks.extend(memoryview(np.ascontiguousarray(p)) for p in parity)
        return ChunkSet(k=self.k, m=self.m, data_len=len(data), chunks=chunks)

    def decode(self, available: Mapping[int, bytes], data_len: int) -> bytes:
        """Rebuild the original value from surviving chunks.

        ``available`` maps chunk index (0..n-1) to chunk bytes.  MDS codes
        use the first K entries in index order; non-MDS codes (LRC) pick a
        linearly independent subset.  Raises :class:`ErasureCodingError`
        when the survivors cannot reconstruct the data.
        """
        if len(available) < self.k:
            raise ErasureCodingError(
                "need %d chunks to decode, got %d" % (self.k, len(available))
            )
        indices = sorted(available)
        sizes = {len(available[i]) for i in indices}
        if len(sizes) != 1:
            raise ErasureCodingError("chunk sizes differ: %s" % sorted(sizes))
        if any(i < 0 or i >= self.n for i in indices):
            raise ErasureCodingError("chunk index out of range 0..%d" % (self.n - 1))
        arrays = {
            i: np.frombuffer(available[i], dtype=np.uint8) for i in indices
        }
        data_chunks = self._decode_data(arrays)
        if isinstance(data_chunks, np.ndarray):
            flat = data_chunks.reshape(-1)
        else:
            flat = np.concatenate(data_chunks)
        if data_len > flat.size:
            raise ErasureCodingError(
                "data_len %d exceeds decoded payload %d" % (data_len, flat.size)
            )
        return flat[:data_len].tobytes()

    # -- subclass hooks ----------------------------------------------------
    def _encode_parity_matrix(self, data_mat: np.ndarray):
        """Produce the M parity chunks from the ``(k, size)`` data matrix.

        Kernel-aware codecs override this with one blocked GF(2^8)
        matrix apply; the default delegates to the legacy per-chunk
        :meth:`_encode_parity` hook.  May return a ``(m, size)`` array or
        a list of M row arrays.
        """
        return self._encode_parity([data_mat[i] for i in range(self.k)])

    def _encode_parity(self, data_chunks: List[np.ndarray]) -> List[np.ndarray]:
        """Produce the M parity chunks for the given K data chunks.

        Subclasses implement either this (row-at-a-time) or
        :meth:`_encode_parity_matrix` (blocked kernel).
        """
        raise NotImplementedError

    @abstractmethod
    def _decode_data(self, available: Dict[int, np.ndarray]):
        """Rebuild the K data chunks from the surviving chunks (>= K).

        May return a list of K row arrays or a ``(k, size)`` matrix.
        """
