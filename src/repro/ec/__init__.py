"""Erasure coding: GF(2^8) arithmetic and the codecs studied in the paper.

The paper's Section III-B benchmarks three codes from Jerasure v2.0 and
selects Reed-Solomon with a Vandermonde matrix (``RS_Van``) as the best
performer for key-value pair sizes of 1 KB - 1 MB:

- ``RS_Van``  -> :class:`repro.ec.reed_solomon.ReedSolomonVandermonde`
- ``CRS``     -> :class:`repro.ec.cauchy.CauchyReedSolomon`
- ``R6-Lib``  -> :class:`repro.ec.liberation.LiberationRaid6`

Plus the paper's named future-work code:

- ``LRC``     -> :class:`repro.ec.lrc.LocalReconstructionCode`
  (Azure-style locally repairable code with cheap single-chunk repair)
- ``LT``      -> :class:`repro.ec.fountain.FountainLT`
  (systematic Luby Transform fountain code: XOR-only, linear-time
  peeling decode, verified-guarantee tolerance)

All three operate on real bytes and are verified by property tests: any K
of the K+M chunks reconstruct the original data.  Simulated *time* for
encode/decode comes from :mod:`repro.ec.cost_model`, calibrated to the
paper's Figure 4 measurements on 2.53 GHz Westmere CPUs.
"""

from repro.ec.cost_model import CodingCostModel

try:
    # The codec kernels are numpy-backed; without numpy only the
    # analytical cost model is available (enough for the placement
    # layer and the pure-replication schemes).
    from repro.ec.base import ChunkSet, ErasureCodec, ErasureCodingError
    from repro.ec.cauchy import CauchyReedSolomon
    from repro.ec.fountain import FountainLT
    from repro.ec.liberation import LiberationRaid6
    from repro.ec.lrc import LocalReconstructionCode
    from repro.ec.reed_solomon import ReedSolomonVandermonde
    from repro.ec.registry import available_codecs, make_codec
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    pass

__all__ = [
    "CauchyReedSolomon",
    "ChunkSet",
    "CodingCostModel",
    "ErasureCodec",
    "ErasureCodingError",
    "FountainLT",
    "LiberationRaid6",
    "LocalReconstructionCode",
    "ReedSolomonVandermonde",
    "available_codecs",
    "make_codec",
]
