"""Calibrated timing model for erasure-coding compute (paper Figure 4).

The codecs in this package produce correct bytes, but their Python
execution speed says nothing about Jerasure's C/SIMD performance on the
paper's 2.53 GHz Westmere nodes.  The simulator therefore charges
encode/decode *virtual time* from this model instead.

Calibration targets (Section III-B, Figure 4):

- RS-Vandermonde is fastest for 1 KB - 1 MB values; encoding a 1 MB value
  with RS(3,2) costs a few hundred microseconds on Westmere.
- CRS and R6-Liberation carry larger fixed costs (bit-matrix schedule
  construction) and only win for very large objects (~256 MB), where their
  streaming XOR kernels outpace GF table lookups that fall out of cache.
- Decoding with ``e`` erased data chunks costs work proportional to
  ``D * e / m``-ish; with zero erasures the systematic fast path is a
  near-free reassembly.

The model is piecewise linear: ``setup + per_byte * work`` with a cheaper
``large_per_byte`` rate for work beyond ``cache_boundary`` (GF lookup
tables thrash above L3; XOR streams do not).  A per-cluster
``cpu_speed_factor`` scales all compute (Westmere = 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional


@dataclass(frozen=True)
class SchemeCost:
    """Piecewise-linear cost curve for one coding scheme."""

    setup: float  # fixed per-operation cost, seconds
    per_byte: float  # seconds per byte of coding work (cache-resident)
    large_per_byte: float  # seconds per byte beyond the cache boundary
    cache_boundary: int  # bytes of work at which the rate switches

    def time_for_work(self, work_bytes: int) -> float:
        """Seconds to process ``work_bytes`` of coding work."""
        if work_bytes <= 0:
            return self.setup
        in_cache = min(work_bytes, self.cache_boundary)
        beyond = max(0, work_bytes - self.cache_boundary)
        return self.setup + in_cache * self.per_byte + beyond * self.large_per_byte


#: Defaults calibrated to Figure 4 (Westmere, RS(3,2), 1 KB - 1 MB range).
DEFAULT_COSTS: Dict[str, SchemeCost] = {
    # GF(2^8) table-lookup kernel: tiny setup, best small-size rate, but
    # the 64 KB multiply tables thrash past L3 so the rate degrades.
    "rs_van": SchemeCost(
        setup=3.0e-6, per_byte=1.5e-10, large_per_byte=2.4e-10,
        cache_boundary=48 * 1024 * 1024,
    ),
    # Bit-matrix XOR kernel: expensive schedule setup, slightly worse
    # in-cache rate (more ops), flat rate at huge sizes.
    "crs": SchemeCost(
        setup=1.2e-5, per_byte=1.9e-10, large_per_byte=1.1e-10,
        cache_boundary=64 * 1024 * 1024,
    ),
    # Minimum-density RAID-6: fewest XORs of the bit-matrix family.
    "r6_lib": SchemeCost(
        setup=8.0e-6, per_byte=1.75e-10, large_per_byte=1.0e-10,
        cache_boundary=64 * 1024 * 1024,
    ),
    # LT fountain: pure whole-chunk XOR — the cheapest kernel of all,
    # linear-time peeling on decode (work scales with the average degree).
    "lt": SchemeCost(
        setup=1.5e-6, per_byte=0.9e-10, large_per_byte=0.9e-10,
        cache_boundary=64 * 1024 * 1024,
    ),
    # Locally repairable code: RS-style GF kernel for encode/global
    # decode; the *local repair* win comes from touching fewer bytes,
    # which callers express through the work parameter.
    "lrc": SchemeCost(
        setup=3.5e-6, per_byte=1.55e-10, large_per_byte=2.4e-10,
        cache_boundary=48 * 1024 * 1024,
    ),
}

#: Cost of assembling K systematic chunks without any decoding (memcpy).
_REASSEMBLY_PER_BYTE = 2.0e-11  # ~50 GB/s memcpy
_REASSEMBLY_SETUP = 5.0e-7


class CodingCostModel:
    """Virtual-time charges for encode/decode operations.

    ``cpu_speed_factor`` expresses a cluster's CPUs relative to the
    calibration machine (RI-QDR Westmere = 1.0; the paper's Comet Haswell
    and RI2-EDR Broadwell nodes are faster).
    """

    def __init__(
        self,
        cpu_speed_factor: float = 1.0,
        costs: Optional[Mapping[str, SchemeCost]] = None,
    ):
        if cpu_speed_factor <= 0:
            raise ValueError("cpu_speed_factor must be positive")
        self.cpu_speed_factor = cpu_speed_factor
        self.costs: Dict[str, SchemeCost] = dict(costs or DEFAULT_COSTS)

    def _scheme(self, name: str) -> SchemeCost:
        try:
            return self.costs[name]
        except KeyError:
            raise KeyError(
                "no cost curve for scheme %r (known: %s)"
                % (name, sorted(self.costs))
            )

    def encode_time(self, scheme: str, data_len: int, k: int, m: int) -> float:
        """Time to encode ``data_len`` bytes into K+M chunks.

        Each of the M parity chunks consumes every data byte once, so the
        coding work is ``data_len * m`` bytes.
        """
        if m == 0:
            return 0.0
        work = data_len * m
        return self._scheme(scheme).time_for_work(work) / self.cpu_speed_factor

    def decode_time(
        self,
        scheme: str,
        data_len: int,
        k: int,
        m: int,
        erased_data_chunks: int,
    ) -> float:
        """Time to rebuild the value from K surviving chunks.

        Reconstructing one erased data chunk multiplies all K survivor
        chunks (``data_len`` bytes total) by a decode-matrix row, so work
        is ``data_len * erased_data_chunks``.  With no erasures the
        systematic chunks are just reassembled.
        """
        if erased_data_chunks < 0 or erased_data_chunks > m:
            raise ValueError(
                "erased_data_chunks must be in [0, m=%d], got %d"
                % (m, erased_data_chunks)
            )
        if erased_data_chunks == 0:
            cost = _REASSEMBLY_SETUP + data_len * _REASSEMBLY_PER_BYTE
            return cost / self.cpu_speed_factor
        work = data_len * erased_data_chunks
        return self._scheme(scheme).time_for_work(work) / self.cpu_speed_factor

    def replication_copy_time(self, data_len: int) -> float:
        """Buffer-copy cost charged per replica by replication schemes."""
        return (_REASSEMBLY_SETUP + data_len * _REASSEMBLY_PER_BYTE) / (
            self.cpu_speed_factor
        )
