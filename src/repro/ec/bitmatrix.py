"""Bit-matrix (binary) coding machinery.

Jerasure's Cauchy-RS and RAID-6 Liberation codes do not multiply in
GF(2^w) on the data path; they convert the generator matrix into a binary
*bit matrix* and encode/decode with pure XORs of word-sized packets.  This
module provides the conversion (via the classic companion-matrix
representation of GF(2^w) elements), XOR-based encode over packets, and
Gauss-Jordan inversion over GF(2).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.ec import gf256
from repro.ec.matrix import SingularMatrixError


def element_to_bitmatrix(a: int, w: int = 8) -> np.ndarray:
    """The ``w x w`` binary matrix representing multiplication by ``a``.

    Column ``j`` holds the bit decomposition of ``a * x^j`` in GF(2^w);
    multiplying this matrix by the bit-vector of ``b`` yields the bit
    vector of ``a * b``.  Only ``w == 8`` is supported for GF arithmetic
    (our field tables are GF(2^8)).
    """
    if w != 8:
        raise ValueError("element_to_bitmatrix supports w=8 only")
    out = np.zeros((w, w), dtype=np.uint8)
    for j in range(w):
        product = gf256.gf_mul(a, 1 << j)
        for i in range(w):
            out[i, j] = (product >> i) & 1
    return out


def matrix_to_bitmatrix(mat: Sequence[Sequence[int]], w: int = 8) -> np.ndarray:
    """Expand a GF(2^8) matrix into its binary equivalent (blocks of w x w)."""
    rows, cols = len(mat), len(mat[0])
    out = np.zeros((rows * w, cols * w), dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            out[r * w : (r + 1) * w, c * w : (c + 1) * w] = element_to_bitmatrix(
                mat[r][c], w
            )
    return out


def shift_identity(w: int, shift: int) -> np.ndarray:
    """Cyclic-shift permutation matrix: output row ``(j + shift) % w`` of I."""
    out = np.zeros((w, w), dtype=np.uint8)
    for j in range(w):
        out[(j + shift) % w, j] = 1
    return out


def bitmatrix_rank(mat: np.ndarray) -> int:
    """Rank over GF(2) by forward elimination (non-destructive)."""
    work = mat.copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        pivot = next((r for r in range(rank, rows) if work[r, col]), None)
        if pivot is None:
            continue
        if pivot != rank:
            work[[rank, pivot]] = work[[pivot, rank]]
        for r in range(rows):
            if r != rank and work[r, col]:
                work[r] ^= work[rank]
        rank += 1
        if rank == rows:
            break
    return rank


def bitmatrix_invert(mat: np.ndarray) -> np.ndarray:
    """Gauss-Jordan inversion over GF(2); raises on singular input."""
    n = mat.shape[0]
    if mat.shape != (n, n):
        raise ValueError("bitmatrix_invert requires a square matrix")
    work = mat.copy()
    inv = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot = next((r for r in range(col, n) if work[r, col]), None)
        if pivot is None:
            raise SingularMatrixError("binary matrix singular at column %d" % col)
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        for r in range(n):
            if r != col and work[r, col]:
                work[r] ^= work[col]
                inv[r] ^= inv[col]
    return inv


def encode_packets(bit_rows: np.ndarray, packets: List[np.ndarray]) -> List[np.ndarray]:
    """XOR-combine ``packets`` according to binary coefficient rows.

    ``bit_rows`` is ``(out_packets, in_packets)``; output packet ``i`` is
    the XOR of every input packet whose column bit is set in row ``i``.
    This is exactly Jerasure's ``jerasure_bitmatrix_encode`` inner loop.
    """
    packet_size = packets[0].size
    out = []
    for row in bit_rows:
        acc = np.zeros(packet_size, dtype=np.uint8)
        for bit, packet in zip(row, packets):
            if bit:
                np.bitwise_xor(acc, packet, out=acc)
        out.append(acc)
    return out


def compile_selections(bit_rows: np.ndarray) -> List[np.ndarray]:
    """Per output row, the input-packet indices with a set bit.

    The blocked encode path XOR-reduces ``packets[selection]`` directly,
    replacing :func:`encode_packets`' per-bit Python loop with one numpy
    reduction per output packet.  Compile once per matrix and cache.
    """
    return [np.flatnonzero(row) for row in bit_rows]


def apply_selections(
    selections: List[np.ndarray], packets: np.ndarray
) -> np.ndarray:
    """XOR-combine rows of the ``(in_packets, size)`` packet matrix.

    Output row ``i`` is the XOR of ``packets[selections[i]]`` — the
    vectorized equivalent of :func:`encode_packets` for packets stacked
    into one matrix (a zero-copy reshape of the chunk matrix).
    """
    out = np.empty((len(selections), packets.shape[1]), dtype=np.uint8)
    for i, selection in enumerate(selections):
        dest = out[i]
        if selection.size == 0:
            dest.fill(0)
        elif selection.size == 1:
            np.copyto(dest, packets[selection[0]])
        else:
            np.bitwise_xor(packets[selection[0]], packets[selection[1]], out=dest)
            for j in selection[2:]:
                np.bitwise_xor(dest, packets[j], out=dest)
    return out


def chunk_to_packets(chunk: np.ndarray, w: int) -> List[np.ndarray]:
    """Split one chunk into ``w`` equal packets (caller pads to multiple)."""
    if chunk.size % w:
        raise ValueError("chunk size %d not divisible by w=%d" % (chunk.size, w))
    packet_size = chunk.size // w
    return [chunk[i * packet_size : (i + 1) * packet_size] for i in range(w)]


def packets_to_chunk(packets: List[np.ndarray]) -> np.ndarray:
    """Reassemble one chunk from its packets."""
    return np.concatenate(packets)
