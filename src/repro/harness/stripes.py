"""Stripe-packing soak (``python -m repro.harness stripes``).

Two phases per seed, one report:

**Comparison** — the same deterministic ETC-shaped small-object
population (sub-threshold values drawn from
:class:`~repro.workloads.etc.EtcSizeSampler`, so the 2 B / 11 B head
spikes the stripe path exists for are present) is written through three
schemes at equal durability — ``stripes``, per-object ``era-ce-cd`` with
the same (k, m), and ``sync-rep`` with factor m+1 — then read back.
Each run reports its storage amplification
(:meth:`~repro.core.cluster.KVCluster.memory_overhead_ratio`) and
goodput in completed ops per virtual second.  The gate is the paper's
motivation for packing: the stripe path's *overhead* (amplification
above 1.0) must be at most half of per-object coding's.

**Chaos** — the stripe cluster alone runs a Set/Get/Delete mix under
the fail-stop fault profile while the compactor is live, with
model-based checking extended for deletes: an acknowledged Delete makes
a later read of the value a *ghost read* violation, an acknowledged Set
must stay readable byte-for-byte, and a failed op leaves the key
*uncertain* (either outcome is legal).  Crashed servers are repaired
in-run — carrier stripes and large objects through
:class:`~repro.resilience.recovery.RepairManager` against the inner
erasure scheme, pre-seal journal copies through
``StripedScheme.repair_server`` — and after the chaos horizon a healed,
clean-room sweep re-checks every key ever touched.

Determinism: the workload, fault schedule and value sizes all derive
from the seed; the report carries a SHA-256 digest over the fault log,
operation counts, violations and the stripe metrics snapshot — two runs
with the same seed must produce identical digests.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.common.payload import Payload
from repro.faults.engine import ChaosEngine
from repro.faults.profiles import profile_by_name
from repro.store.client import KVStoreError
from repro.store.policy import HARDENED_POLICY

#: schemes measured in the comparison phase (stripes must come first:
#: its goodput is the bench-gated headline number).
COMPARISON_SCHEMES = ("stripes", "era-ce-cd", "sync-rep")


@dataclass
class StripesSoakConfig:
    """One stripes-soak run's shape.  Times are virtual seconds."""

    seed: int = 0
    net_profile: str = "ri-qdr"
    servers: int = 6
    k: int = 3
    m: int = 2
    #: comparison phase: objects written (then read back) per scheme
    objects: int = 500
    #: cap on sampled ETC sizes so every object stays on the packed path
    max_value: int = 2048
    #: chaos phase: virtual seconds of faulted Set/Get/Delete load
    duration: float = 1.0
    fault_profile: str = "crash"
    num_clients: int = 2
    key_space: int = 48
    set_fraction: float = 0.45
    delete_fraction: float = 0.10
    #: mean think time between a client's operations
    op_gap: float = 2e-3
    #: rebuild crashed servers (chunks + journals) while the run goes on
    repair: bool = True


def _value_bytes(key: str, seq: int, size: int) -> bytes:
    """Deterministic, per-write-unique payload bytes."""
    stamp = ("%s#%d|" % (key, seq)).encode()
    reps = size // len(stamp) + 1
    return (stamp * reps)[:size]


def _etc_sizes(config: StripesSoakConfig, count: int) -> List[int]:
    """ETC-shaped sizes, capped below the stripe threshold."""
    from repro.workloads.etc import EtcSizeSampler

    sampler = EtcSizeSampler(seed=config.seed + 211)
    return [min(size, config.max_value) for size in sampler.sample_sizes(count)]


# ---------------------------------------------------------------------------
# Phase 1: memory overhead and goodput, stripes vs the per-object schemes
# ---------------------------------------------------------------------------


def _measure_scheme(config: StripesSoakConfig, scheme_name: str) -> dict:
    """Write + read the ETC population through one scheme; measure it."""
    from repro.core.cluster import build_cluster

    cluster = build_cluster(
        profile=config.net_profile,
        scheme=scheme_name,
        servers=config.servers,
        k=config.k,
        m=config.m,
        replication_factor=config.m + 1,
    )
    sim = cluster.sim
    client = cluster.add_client(name_hint="cmp")
    sizes = _etc_sizes(config, config.objects)
    acked = [0]
    read_ok = [0]

    def body():
        for index, size in enumerate(sizes):
            key = "cmp:k%05d" % index
            data = _value_bytes(key, index, size)
            ok = yield from client.set(key, Payload.from_bytes(data))
            if ok:
                acked[0] += 1
        for index, size in enumerate(sizes):
            key = "cmp:k%05d" % index
            value = yield from client.get(key)
            if value is not None and value.size == size:
                read_ok[0] += 1

    sim.run(sim.process(body(), name="cmp-load"))
    cluster.run()  # drain seal timers / background coding
    elapsed = sim.now
    ops = acked[0] + read_ok[0]
    return {
        "scheme": scheme_name,
        "objects": config.objects,
        "set_acks": acked[0],
        "get_ok": read_ok[0],
        "logical_bytes": sum(sizes),
        "stored_bytes": cluster.total_stored_bytes,
        "memory_overhead_ratio": round(cluster.memory_overhead_ratio(), 6),
        "goodput_ops_per_sec": round(ops / elapsed, 3) if elapsed else 0.0,
        "virtual_time": round(elapsed, 9),
    }


# ---------------------------------------------------------------------------
# Phase 2: chaos + compaction durability on the stripe path
# ---------------------------------------------------------------------------


class _ClientModel:
    """What one single-writer client believes about its keys."""

    def __init__(self, name: str):
        self.name = name
        #: key -> bytes of the last acknowledged Set
        self.acked: Dict[str, bytes] = {}
        #: keys whose last acknowledged op was a Delete (must read as miss)
        self.deleted: Set[str] = set()
        #: key -> set of legal read outcomes (bytes or None) after a
        #: failed Set/Delete left the key in an unknown state
        self.uncertain: Dict[str, Set[Optional[bytes]]] = {}
        self.seq = 0
        self.set_attempts = 0
        self.set_acks = 0
        self.set_failures = 0
        self.delete_attempts = 0
        self.delete_acks = 0
        self.delete_failures = 0
        self.get_attempts = 0
        self.get_ok = 0
        self.unavailable = 0

    def keys_touched(self) -> Set[str]:
        return set(self.acked) | self.deleted | set(self.uncertain)

    def _current_outcomes(self, key: str) -> Set[Optional[bytes]]:
        """The read outcomes legal *before* the op now being attempted."""
        if key in self.uncertain:
            return set(self.uncertain[key])
        if key in self.acked:
            return {self.acked[key]}
        return {None}

    def note_set(self, key: str, data: bytes, ok: bool) -> None:
        if ok:
            self.acked[key] = data
            self.deleted.discard(key)
            self.uncertain.pop(key, None)
            self.set_acks += 1
        else:
            legal = self._current_outcomes(key)
            legal.add(data)
            self.uncertain[key] = legal
            self.acked.pop(key, None)
            self.deleted.discard(key)
            self.set_failures += 1

    def note_delete(self, key: str, ok: bool) -> None:
        if ok:
            self.acked.pop(key, None)
            self.uncertain.pop(key, None)
            self.deleted.add(key)
            self.delete_acks += 1
        else:
            legal = self._current_outcomes(key)
            legal.add(None)
            self.uncertain[key] = legal
            self.acked.pop(key, None)
            self.deleted.discard(key)
            self.delete_failures += 1


def _run_chaos_phase(config: StripesSoakConfig) -> dict:
    """Set/Get/Delete mix under fail-stop chaos with live compaction."""
    from repro.core.cluster import build_cluster
    from repro.resilience.recovery import RepairManager

    profile = profile_by_name(config.fault_profile)
    cluster = build_cluster(
        profile=config.net_profile,
        scheme="stripes",
        servers=config.servers,
        k=config.k,
        m=config.m,
    )
    cluster.config.harden(HARDENED_POLICY)
    for server in cluster.servers.values():
        server.peer_timeout = HARDENED_POLICY.request_timeout
    sim = cluster.sim
    scheme = cluster.scheme
    inner = getattr(scheme, "inner", scheme)
    tolerated = scheme.tolerated_failures

    master = random.Random(config.seed)
    chaos = ChaosEngine(
        cluster,
        profile,
        seed=master.getrandbits(64),
        max_degraded=tolerated,
    )

    violations = {"lost_writes": [], "wrong_bytes": [], "ghost_reads": []}
    models: List[_ClientModel] = []
    clients = []
    rngs = []
    for _ in range(config.num_clients):
        client = cluster.add_client(name_hint="ssoak")
        clients.append(client)
        models.append(_ClientModel(client.name))
        rngs.append(random.Random(master.getrandbits(64)))
    sizes = _etc_sizes(config, 512)

    # -- in-run repair: inner chunks via RepairManager, journals via the
    # scheme's own holder re-replication ----------------------------------
    def _on_crash(name: str) -> None:
        if not config.repair:
            return
        sim.process(_repair_proc(name), name="stripes-repair-%s" % name)

    def _repair_proc(name):
        manager = RepairManager(cluster, inner)
        repair_client = cluster.add_client(name_hint="jrepair")
        repair_client.default_lane = "bg"
        for _attempt in range(3):
            yield sim.timeout(0.01)
            yield from manager.repair_server(name, sorted(inner.known_keys()))
            if hasattr(scheme, "repair_server"):
                yield from scheme.repair_server(repair_client, name)
            if cluster.servers[name].alive:
                break
        chaos.mark_repaired(name)

    chaos.on_crash = _on_crash
    chaos.start(config.duration)

    # -- the workload ------------------------------------------------------
    def _check_read(model: _ClientModel, key: str, value, stage: str) -> None:
        data = value.data if value is not None and value.has_data else None
        if value is not None and not value.has_data:
            # sized payloads never occur here (all writes carry bytes)
            data = b""
        if key in model.uncertain:
            if data not in model.uncertain[key]:
                violations["wrong_bytes"].append(
                    {"key": key, "stage": stage, "reason": "uncertain-mismatch"}
                )
            return
        if key in model.deleted:
            if data is not None:
                violations["ghost_reads"].append(
                    {"key": key, "stage": stage, "reason": "deleted-readable"}
                )
            return
        expected = model.acked.get(key)
        if data is None:
            if expected is not None:
                violations["lost_writes"].append(
                    {"key": key, "stage": stage, "reason": "miss"}
                )
            return
        if stage == "run":
            model.get_ok += 1
        if expected is not None and data != expected:
            violations["wrong_bytes"].append(
                {"key": key, "stage": stage, "reason": "mismatch"}
            )

    def _worker(client, rng, model):
        while sim.now < config.duration:
            yield sim.timeout(rng.expovariate(1.0 / config.op_gap))
            key = "%s:k%03d" % (model.name, rng.randrange(config.key_space))
            roll = rng.random()
            if roll < config.delete_fraction:
                model.delete_attempts += 1
                try:
                    yield from client.delete(key)
                except KVStoreError:
                    model.note_delete(key, ok=False)
                else:
                    model.note_delete(key, ok=True)
            elif roll < config.delete_fraction + config.set_fraction:
                model.seq += 1
                model.set_attempts += 1
                size = sizes[(model.seq + len(key)) % len(sizes)]
                data = _value_bytes(key, model.seq, size)
                try:
                    acked = yield from client.set(key, Payload.from_bytes(data))
                except KVStoreError:
                    acked = False
                model.note_set(key, data, ok=acked)
            else:
                model.get_attempts += 1
                try:
                    value = yield from client.get(key)
                except KVStoreError:
                    model.unavailable += 1
                    continue
                _check_read(model, key, value, stage="run")

    for client, rng, model in zip(clients, rngs, models):
        sim.process(_worker(client, rng, model), name="%s-load" % client.name)
    cluster.run()  # quiescence: workload + chaos + seals + compaction

    # -- heal, final repair, clean-room sweep ------------------------------
    chaos.heal_all()
    chaos.uninstall()
    leftovers = sorted(chaos.unrepaired)
    if leftovers:

        def _final_repairs():
            manager = RepairManager(cluster, inner)
            repair_client = cluster.add_client(name_hint="jrepair")
            repair_client.default_lane = "bg"
            for name in leftovers:
                yield from manager.repair_server(
                    name, sorted(inner.known_keys())
                )
                if hasattr(scheme, "repair_server"):
                    yield from scheme.repair_server(repair_client, name)
                chaos.mark_repaired(name)

        sim.process(_final_repairs(), name="stripes-final-repair")
        cluster.run()

    def _sweep():
        client = cluster.add_client(name_hint="sweep")
        for model in models:
            for key in sorted(model.keys_touched()):
                try:
                    value = yield from client.get(key)
                except KVStoreError as exc:
                    if key in model.acked and key not in model.uncertain:
                        violations["lost_writes"].append(
                            {"key": key, "stage": "sweep", "reason": str(exc)}
                        )
                    continue
                _check_read(model, key, value, stage="sweep")

    sim.process(_sweep(), name="stripes-sweep")
    cluster.run()

    ops = {
        "set_attempts": sum(m.set_attempts for m in models),
        "set_acks": sum(m.set_acks for m in models),
        "set_failures": sum(m.set_failures for m in models),
        "delete_attempts": sum(m.delete_attempts for m in models),
        "delete_acks": sum(m.delete_acks for m in models),
        "delete_failures": sum(m.delete_failures for m in models),
        "get_attempts": sum(m.get_attempts for m in models),
        "get_ok": sum(m.get_ok for m in models),
        "unavailable": sum(m.unavailable for m in models),
    }
    snapshot = cluster.metrics.snapshot()
    interesting = {
        name: value
        for name, value in sorted(snapshot.items())
        if name.split(".")[0]
        in ("faults", "client", "reads", "writes", "fabric", "stripes")
    }
    fault_log = [[t, kind, detail] for t, kind, detail in chaos.fault_log]
    return {
        "ops": ops,
        "violations": violations,
        "metrics": interesting,
        "fault_log": fault_log,
        "virtual_time": sim.now,
        "corruption_detected": sum(
            server.corruption_detected for server in cluster.servers.values()
        ),
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_stripes(config: StripesSoakConfig) -> dict:
    """Execute one seeded stripes soak; returns the JSON-able report."""
    comparison = {
        name: _measure_scheme(config, name) for name in COMPARISON_SCHEMES
    }
    stripes_overhead = comparison["stripes"]["memory_overhead_ratio"] - 1.0
    era_overhead = comparison["era-ce-cd"]["memory_overhead_ratio"] - 1.0
    overhead_ok = (
        stripes_overhead > 0 and era_overhead >= 2.0 * stripes_overhead
    )

    chaos = _run_chaos_phase(config)
    violations = chaos["violations"]
    durability_ok = not any(violations.values())

    config_block = {
        "seed": config.seed,
        "servers": config.servers,
        "k": config.k,
        "m": config.m,
        "objects": config.objects,
        "max_value": config.max_value,
        "duration": config.duration,
        "fault_profile": config.fault_profile,
    }
    digest_input = {
        "config": config_block,
        "comparison": comparison,
        "ops": chaos["ops"],
        "fault_log": chaos["fault_log"],
        "metrics": chaos["metrics"],
        "violations": violations,
    }
    digest = hashlib.sha256(
        json.dumps(digest_input, sort_keys=True).encode()
    ).hexdigest()
    return {
        "config": config_block,
        "ok": overhead_ok and durability_ok,
        "comparison": comparison,
        "gates": {
            "overhead_ok": overhead_ok,
            "stripes_overhead": round(stripes_overhead, 6),
            "per_object_overhead": round(era_overhead, 6),
            "durability_ok": durability_ok,
        },
        "ops": chaos["ops"],
        "violations": violations,
        "stripe_metrics": {
            name: value
            for name, value in chaos["metrics"].items()
            if name.startswith("stripes.")
        },
        "corruption_detected": chaos["corruption_detected"],
        "fault_log_entries": len(chaos["fault_log"]),
        "virtual_time": chaos["virtual_time"],
        "digest": digest,
    }


def run_stripes_suite(
    seeds: List[int], config: Optional[StripesSoakConfig] = None
) -> dict:
    """Run the stripes soak across seeds; aggregate verdict + reports."""
    import dataclasses

    base = config or StripesSoakConfig()
    reports = []
    for seed in seeds:
        reports.append(run_stripes(dataclasses.replace(base, seed=seed)))
    return {
        "ok": all(r["ok"] for r in reports),
        "seeds": list(seeds),
        "reports": reports,
    }
