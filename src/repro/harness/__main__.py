"""Command-line experiment runner.

Run any of the paper's experiments by figure id and print its table::

    python -m repro.harness fig8              # Set/Get micro-benchmarks
    python -m repro.harness fig13 --full      # paper-scale TestDFSIO
    python -m repro.harness --list

``bench`` is the odd one out: instead of a figure's virtual-time table it
measures the harness's own wall-clock performance (codec MB/s, simulated
events/sec, end-to-end ops/sec)::

    python -m repro.harness bench --quick
    python -m repro.harness bench --output BENCH_perf.json
    python -m repro.harness bench --baseline BENCH_perf.json

``chaos`` runs the seeded fault-injection soak and asserts the
durability invariant — every acknowledged Set stays readable with the
acknowledged bytes while concurrent failures stay within the scheme's
tolerance.  It exits non-zero on any violation::

    python -m repro.harness chaos --seeds 1,2,3
    python -m repro.harness chaos --seed 7 --fault-profile gray --check-determinism
    python -m repro.harness chaos --scheme era-se-sd --report chaos.json

``scale`` runs the elasticity experiment: a live workload while two
servers join and one is decommissioned, with the background rebuild
bandwidth-capped.  It exits non-zero if durability, the throttle bound,
or the foreground-p99 bound is violated::

    python -m repro.harness scale --quick
    python -m repro.harness scale --seeds 1,2 --check-determinism
    python -m repro.harness scale --bandwidth 50 --report scale.json
    python -m repro.harness scale --quick --servers 1000 --keys 500000

``gossip`` runs the SWIM membership churn soak: a thousand-node cluster
through a clean-room window (zero false positives, O(1) per-node
message load vs a small control cluster), staggered crashes (median
time-to-detect gate), an asymmetric partial partition (indirect probes
must rescue the victim), a flap storm (refutations must win), and a
join whose sealed epoch must reach every node's view by gossip alone.
It exits non-zero on any gate violation::

    python -m repro.harness gossip --quick --seeds 0,1 --check-determinism
    python -m repro.harness gossip --servers 1000 --report gossip.json
    python -m repro.harness gossip --period 0.02 --crashes 8

``stripes`` runs the small-object stripe-packing soak: the same
ETC-shaped sub-threshold population through stripes, per-object
era-ce-cd and sync-rep at equal durability (memory-overhead and goodput
comparison; stripes must at least halve per-object coding's overhead),
then a Set/Get/Delete chaos run on the stripe path with the compactor
live (tombstone and compaction durability; deterministic digest).  It
exits non-zero on any gate violation::

    python -m repro.harness stripes --seeds 0,1 --check-determinism
    python -m repro.harness stripes --quick --report stripes.json
    python -m repro.harness stripes --objects 2000 --duration 2.0

``overload`` runs the open-loop ramp soak: warm load, a flood far past
server CPU capacity, then warm load again.  With protection on (the
default) it exits non-zero unless post-ramp goodput recovers to >= 80%
of pre-ramp and every issued op resolved to a typed result; with
``--contrast`` it additionally runs the same seed unprotected and
requires *that* run to fail the goodput gate::

    python -m repro.harness overload --seeds 1,2 --contrast
    python -m repro.harness overload --seed 7 --check-determinism
    python -m repro.harness overload --no-protection --report ramp.json

CI-scale parameters are the default (same shapes, minutes not hours);
``--full`` switches each experiment to the paper's published setup.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.harness import experiments
from repro.harness.reporting import format_table

KIB = 1024

#: per-figure (ci_kwargs, full_kwargs) overrides for the runners.
_SCALES = {
    "fig4": ({}, {}),
    "fig8": ({"num_ops": 200}, {"num_ops": 1000}),
    "fig9": ({"num_ops": 150}, {"num_ops": 500}),
    "fig10": ({"scale": 0.04}, {"scale": 1.0}),
    "fig11": (
        {
            "num_clients": 30,
            "record_count": 8_000,
            "ops_per_client": 120,
            "value_sizes": (4 * KIB, 32 * KIB),
        },
        {},
    ),
    "fig12": (
        {
            "num_clients": 30,
            "record_count": 8_000,
            "ops_per_client": 120,
            "value_sizes": (4 * KIB, 32 * KIB),
        },
        {},
    ),
    "fig13": (
        {"scale": 0.05, "data_sizes_gb": (10.0, 40.0)},
        {"scale": 1.0},
    ),
}

#: experiments whose runners accept ``trace_dir``.
_TRACEABLE = {"fig8", "fig9", "fig11", "fig12"}


def _rows_to_table(rows) -> str:
    fields = [f.name for f in dataclasses.fields(rows[0])]
    return format_table(
        fields,
        [[getattr(row, name) for name in fields] for row in rows],
    )


#: metrics the CI regression gate watches by default: the end-to-end op
#: path (single and batched), raw engine event throughput, the
#: 1,000-server placement path, and the headline-geometry decode (the
#: degraded-read path the scrubber leans on).  The remaining codec MB/s
#: metrics stay ungated — shared runners are too noisy to threshold
#: every kernel-level geometry.
_BENCH_GATE_DEFAULTS = (
    "fig8_ops_per_sec",
    "batch_ops_per_sec",
    "engine_events_per_sec",
    "scale1k_keys_per_sec",
    "stripe_goodput_ops_per_sec",
    "decode_mbps/rs_van_k4_m2_1mib",
)


def _run_bench(args) -> int:
    from repro.harness import perfbench

    if args.gate is not None and not args.baseline:
        print("--gate requires --baseline", file=sys.stderr)
        return 2
    print(
        "Running wall-clock bench suite (%s mode) ..."
        % ("quick" if args.quick else "full"),
        file=sys.stderr,
    )
    report = perfbench.run_suite(quick=args.quick)
    baseline = perfbench.load_report(args.baseline) if args.baseline else None
    if args.output:
        payload = perfbench.write_report(args.output, report, baseline=baseline)
        print("Wrote %s" % args.output, file=sys.stderr)
    elif baseline is not None:
        payload = {
            "before": baseline,
            "after": report,
            "speedup": perfbench.compare(baseline, report),
        }
    else:
        payload = report
    print(perfbench.format_report(payload))
    if args.gate is not None:
        gated = tuple(args.gate) or _BENCH_GATE_DEFAULTS
        speedup = perfbench.compare(baseline, report)
        failed = False
        for metric in gated:
            ratio = speedup.get(metric)
            if ratio is None:
                print(
                    "gate: %s missing from baseline or report" % metric,
                    file=sys.stderr,
                )
                failed = True
            elif ratio < args.fail_under:
                print(
                    "gate: %s regressed to %.2fx of baseline "
                    "(threshold %.2fx)" % (metric, ratio, args.fail_under),
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    "gate: %s ok at %.2fx of baseline" % (metric, ratio),
                    file=sys.stderr,
                )
        if failed:
            return 1
    return 0


def _run_chaos(args) -> int:
    import json

    from repro.faults import SoakConfig, run_soak_suite
    from repro.faults.profiles import PROFILES

    fault_profile = args.fault_profile or "all"
    if fault_profile not in PROFILES:
        print(
            "unknown fault profile %r (choices: %s)"
            % (fault_profile, ", ".join(sorted(PROFILES))),
            file=sys.stderr,
        )
        return 2
    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else [args.seed]
    )
    config = SoakConfig(
        duration=args.duration,
        scheme=args.scheme,
        servers=args.servers if args.servers is not None else 6,
        k=args.k,
        m=args.m,
        fault_profile=fault_profile,
    )
    print(
        "Chaos soak: scheme=%s profile=%s servers=%d k=%d m=%d "
        "duration=%.2fs seeds=%s"
        % (
            config.scheme,
            config.fault_profile,
            config.servers,
            config.k,
            config.m,
            config.duration,
            seeds,
        ),
        file=sys.stderr,
    )
    suite = run_soak_suite(seeds, config)
    determinism_ok = True
    if args.check_determinism:
        rerun = run_soak_suite(seeds, config)
        for first, second in zip(suite["reports"], rerun["reports"]):
            match = first["digest"] == second["digest"]
            determinism_ok = determinism_ok and match
            print(
                "seed %d digest %s rerun %s -> %s"
                % (
                    first["config"]["seed"],
                    first["digest"][:16],
                    second["digest"][:16],
                    "identical" if match else "DIVERGED",
                ),
                file=sys.stderr,
            )
        suite["deterministic"] = determinism_ok

    for report in suite["reports"]:
        ops = report["ops"]
        violations = report["violations"]
        print(
            "seed %-6d %s  sets %d/%d acked, gets %d ok / %d unavailable, "
            "faults %d, lost %d, wrong-bytes %d"
            % (
                report["config"]["seed"],
                "OK  " if report["ok"] else "FAIL",
                ops["set_acks"],
                ops["set_attempts"],
                ops["get_ok"],
                ops["unavailable"],
                report["fault_log_entries"],
                len(violations["lost_writes"]),
                len(violations["wrong_bytes"]),
            )
        )
        for kind in ("lost_writes", "wrong_bytes"):
            for violation in violations[kind]:
                print("  %s: %s" % (kind, violation))
        latency = report["latency"]
        for op in ("set", "get"):
            summary = latency.get(op)
            if summary:
                print(
                    "  %s latency (degraded run): p50 %.1fus  p95 %.1fus  "
                    "p99 %.1fus  max %.1fus  (n=%d)"
                    % (
                        op,
                        summary["p50_us"],
                        summary["p95_us"],
                        summary["p99_us"],
                        summary["max_us"],
                        summary["count"],
                    )
                )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(suite, handle, indent=2, sort_keys=True)
        print("Wrote %s" % args.report, file=sys.stderr)
    ok = suite["ok"] and determinism_ok
    print(
        "Durability invariant %s across %d seed(s)."
        % ("HELD" if suite["ok"] else "VIOLATED", len(seeds))
    )
    if args.check_determinism:
        print(
            "Determinism check %s."
            % ("passed" if determinism_ok else "FAILED")
        )
    return 0 if ok else 1


def _run_scrub(args) -> int:
    import json

    from repro.harness.scrub import ScrubSoakConfig, run_scrub_suite

    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else [args.seed]
    )
    config = ScrubSoakConfig(
        duration=args.duration,
        scheme=args.scheme,
        servers=args.servers if args.servers is not None else 6,
        k=args.k,
        m=args.m,
        fault_profile=args.fault_profile or "rot",
        scan_period=args.scan_period,
        audit_period=args.audit_period,
        epsilon=args.epsilon,
        p_bound=args.p_bound,
    )
    print(
        "Scrub soak: scheme=%s profile=%s servers=%d k=%d m=%d "
        "duration=%.2fs scan=%.2fs audit=%.2fs eps=%g p=%g seeds=%s"
        % (
            config.scheme,
            config.fault_profile,
            config.servers,
            config.k,
            config.m,
            config.duration,
            config.scan_period,
            config.audit_period,
            config.epsilon,
            config.p_bound,
            seeds,
        ),
        file=sys.stderr,
    )
    suite = run_scrub_suite(seeds, config)
    determinism_ok = True
    if args.check_determinism:
        rerun = run_scrub_suite(seeds, config)
        for first, second in zip(suite["reports"], rerun["reports"]):
            match = first["digest"] == second["digest"]
            determinism_ok = determinism_ok and match
            print(
                "seed %d digest %s rerun %s -> %s"
                % (
                    first["config"]["seed"],
                    first["digest"][:16],
                    second["digest"][:16],
                    "identical" if match else "DIVERGED",
                ),
                file=sys.stderr,
            )
        suite["deterministic"] = determinism_ok

    for report in suite["reports"]:
        ops = report["ops"]
        scrub = report["scrub"]
        ratio = report["p99_ratio"]
        print(
            "seed %-6d %s  rot %d injected, scrub found %d / repaired %d "
            "(%d verifies, %d passes), sets %d/%d acked, gets %d ok"
            % (
                report["config"]["seed"],
                "OK  " if report["ok"] else "FAIL",
                report["rot_injected"],
                scrub["corrupt_found"],
                scrub["repairs_triggered"],
                scrub["chunks_verified"],
                scrub["passes"],
                ops["set_acks"],
                ops["set_attempts"],
                ops["get_ok"],
            )
        )
        for name, passed in sorted(report["gates"].items()):
            print("  gate %-22s %s" % (name, "ok" if passed else "FAIL"))
        for kind, entries in sorted(report["violations"].items()):
            for violation in entries:
                print("  %s: %s" % (kind, violation))
        ttd = scrub["time_to_detect"]
        tth = scrub["time_to_heal"]
        if ttd.get("count"):
            print(
                "  time-to-detect: mean %.3fs  p99 %.3fs  max %.3fs "
                "(n=%d, bound %.2fs)"
                % (
                    ttd["mean"],
                    ttd["p99"],
                    ttd["max"],
                    ttd["count"],
                    scrub["ttd_bound"],
                )
            )
        if tth.get("count"):
            print(
                "  time-to-heal:   mean %.3fs  p99 %.3fs  max %.3fs (n=%d)"
                % (tth["mean"], tth["p99"], tth["max"], tth["count"])
            )
        print(
            "  audits: %d certified / %d issued (%d samples each, "
            "eps<=%g)"
            % (
                scrub["audits_certified"],
                len(scrub["audits"]),
                scrub["audits"][0]["samples"] if scrub["audits"] else 0,
                config.epsilon,
            )
        )
        if ratio is not None:
            print(
                "  foreground get p99: %.1fus vs %.1fus baseline "
                "(%.2fx, limit %.2fx)"
                % (
                    report["get_latency"]["p99_us"],
                    report["baseline_get_latency"]["p99_us"],
                    ratio,
                    config.p99_ratio_limit,
                )
            )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(suite, handle, indent=2, sort_keys=True)
        print("Wrote %s" % args.report, file=sys.stderr)
    ok = suite["ok"] and determinism_ok
    print(
        "Scrub gates %s across %d seed(s)."
        % ("HELD" if suite["ok"] else "VIOLATED", len(seeds))
    )
    if args.check_determinism:
        print(
            "Determinism check %s."
            % ("passed" if determinism_ok else "FAILED")
        )
    return 0 if ok else 1


def _run_scale(args) -> int:
    import json

    from repro.harness.scale import MIB, ScaleConfig, run_scale_suite

    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else [args.seed]
    )
    config = ScaleConfig(
        scheme=args.scheme,
        servers=args.servers if args.servers is not None else 6,
        k=args.k,
        m=args.m,
        fault_profile=args.fault_profile or "scale",
        bandwidth=args.bandwidth * MIB if args.bandwidth else 24.0 * MIB,
        join=args.join,
    )
    if args.quick:
        config = dataclasses.replace(
            config, key_space=24, baseline=0.25, cooldown=0.1
        )
    # Explicit workload-shape flags win over the --quick defaults.
    if args.keys is not None:
        config = dataclasses.replace(config, key_space=args.keys)
    if args.clients is not None:
        config = dataclasses.replace(config, num_clients=args.clients)
    print(
        "Scale experiment: scheme=%s servers=%d k=%d m=%d join=%d "
        "bandwidth=%.0fMiB/s profile=%s seeds=%s"
        % (
            config.scheme,
            config.servers,
            config.k,
            config.m,
            config.join,
            (config.bandwidth or 0) / MIB,
            config.fault_profile,
            seeds,
        ),
        file=sys.stderr,
    )
    suite = run_scale_suite(seeds, config)
    determinism_ok = True
    if args.check_determinism:
        rerun = run_scale_suite(seeds, config)
        for first, second in zip(suite["reports"], rerun["reports"]):
            match = first["digest"] == second["digest"]
            determinism_ok = determinism_ok and match
            print(
                "seed %d digest %s rerun %s -> %s"
                % (
                    first["config"]["seed"],
                    first["digest"][:16],
                    second["digest"][:16],
                    "identical" if match else "DIVERGED",
                ),
                file=sys.stderr,
            )
        suite["deterministic"] = determinism_ok

    for report in suite["reports"]:
        ops = report["ops"]
        throttle = report["throttle"]
        latency = report["latency"]
        print(
            "seed %-6d %s  sets %d/%d acked, gets %d ok, epochs %d, "
            "moves %s, rebuild %.1f MiB"
            % (
                report["config"]["seed"],
                "OK  " if report["ok"] else "FAIL",
                ops["set_acks"],
                ops["set_attempts"],
                ops["get_ok"],
                report["membership"]["final_epoch"],
                "+".join(
                    str(t["plan"]["moves"]) for t in report["transitions"]
                ),
                throttle["total_bytes"] / MIB,
            )
        )
        print(
            "  throttle %s: peak %.1f MiB/s vs cap %.1f MiB/s "
            "(%d slots, %.0fms windows)"
            % (
                "OK" if throttle["ok"] else "EXCEEDED",
                throttle["peak_rate"] / MIB,
                (throttle["bandwidth_cap"] or 0) / MIB,
                throttle["slots"],
                throttle["rate_window"] * 1e3,
            )
        )
        base = latency["baseline_get"] or {}
        mig = latency["migration_get"] or {}
        print(
            "  foreground get p99 %s: baseline %.1fus -> migration %.1fus "
            "(ratio %s, bound %.1fx)"
            % (
                "OK" if latency["ok"] else "DEGRADED",
                base.get("p99_us", float("nan")),
                mig.get("p99_us", float("nan")),
                latency["p99_ratio"],
                latency["max_p99_ratio"],
            )
        )
        resources = report.get("resources") or {}
        if resources:
            rss = resources.get("peak_rss_mib")
            print(
                "  resources: cluster built in %.3fs, peak RSS %s"
                % (
                    resources.get("cluster_build_seconds", float("nan")),
                    "%.1f MiB" % rss if rss is not None else "unknown",
                )
            )
        durability = report["durability"]
        if not durability["ok"]:
            for kind, entries in durability["violations"].items():
                for violation in entries:
                    print("  %s: %s" % (kind, violation))
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(suite, handle, indent=2, sort_keys=True)
        print("Wrote %s" % args.report, file=sys.stderr)
    ok = suite["ok"] and determinism_ok
    print(
        "Elasticity invariants %s across %d seed(s)."
        % ("HELD" if suite["ok"] else "VIOLATED", len(seeds))
    )
    if args.check_determinism:
        print(
            "Determinism check %s."
            % ("passed" if determinism_ok else "FAILED")
        )
    return 0 if ok else 1


def _run_gossip(args) -> int:
    import json

    from repro.harness.gossip import GossipConfig, run_gossip_suite

    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else [args.seed]
    )
    config = GossipConfig(
        scheme=args.scheme,
        servers=args.servers if args.servers is not None else 1000,
        k=args.k,
        m=args.m,
        period=args.period,
        crashes=args.crashes,
    )
    if args.quick:
        config = dataclasses.replace(
            config,
            clean_periods=12,
            crashes=min(config.crashes, 3),
            settle_periods=10.0,
            epoch_periods=15.0,
            control_servers=100,
        )
    print(
        "Gossip soak: scheme=%s servers=%d period=%.0fms crashes=%d "
        "seeds=%s"
        % (
            config.scheme,
            config.servers,
            config.period * 1e3,
            config.crashes,
            seeds,
        ),
        file=sys.stderr,
    )
    suite = run_gossip_suite(seeds, config)
    determinism_ok = True
    if args.check_determinism:
        rerun = run_gossip_suite(seeds, config)
        for first, second in zip(suite["reports"], rerun["reports"]):
            match = first["digest"] == second["digest"]
            determinism_ok = determinism_ok and match
            print(
                "seed %d digest %s rerun %s -> %s"
                % (
                    first["config"]["seed"],
                    first["digest"][:16],
                    second["digest"][:16],
                    "identical" if match else "DIVERGED",
                ),
                file=sys.stderr,
            )
        suite["deterministic"] = determinism_ok

    for report in suite["reports"]:
        phases = report["phases"]
        load = report["load"]
        crash = phases["crash"]
        print(
            "seed %-6d %s  ttd median %s periods (confirm %s), "
            "load %.2f msg/node/period (ratio %s vs %s servers)"
            % (
                report["config"]["seed"],
                "OK  " if report["ok"] else "FAIL",
                crash["median_ttd_periods"],
                crash["confirm_periods"][-1] if crash["confirm_periods"] else "-",
                load["msgs_per_node_per_period"],
                load["ratio"],
                load["control_servers"],
            )
        )
        print(
            "  clean room: %d periods, %d false suspects, %d false deaths"
            % (
                phases["clean"]["periods"],
                phases["clean"]["false_suspects"],
                phases["clean"]["false_dead"],
            )
        )
        print(
            "  partition: %d links cut one-way, %d indirect probes "
            "(%d rescues), %d transient verdicts; flap: %d cycles, "
            "%d transient verdicts, flapper %s"
            % (
                phases["partition"]["links_cut"],
                phases["partition"]["indirect_probes"],
                phases["partition"]["indirect_rescues"],
                phases["partition"]["victim_dead_verdicts"],
                phases["flap"]["cycles"],
                phases["flap"]["transient_dead_verdicts"],
                "alive" if phases["flap"]["flapper_alive"] else "DEAD",
            )
        )
        if "join" in phases:
            print(
                "  join: epoch %d reached %d/%d views, dead-set "
                "agreement %s"
                % (
                    phases["join"]["sealed_epoch"],
                    phases["join"]["views"]
                    - len(phases["join"]["lagging_views"]),
                    phases["join"]["views"],
                    phases["join"]["dead_set_agreement"],
                )
            )
        for failure in report["failures"]:
            print("  gate FAILED: %s" % failure)
        resources = report.get("resources") or {}
        if resources:
            rss = resources.get("peak_rss_mib")
            print(
                "  resources: built %.3fs, soak %.3fs wall, peak RSS %s"
                % (
                    resources.get("cluster_build_seconds", float("nan")),
                    resources.get("soak_wall_seconds", float("nan")),
                    "%.1f MiB" % rss if rss is not None else "unknown",
                )
            )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(suite, handle, indent=2, sort_keys=True)
        print("Wrote %s" % args.report, file=sys.stderr)
    ok = suite["ok"] and determinism_ok
    print(
        "Gossip membership gates %s across %d seed(s)."
        % ("HELD" if suite["ok"] else "VIOLATED", len(seeds))
    )
    if args.check_determinism:
        print(
            "Determinism check %s."
            % ("passed" if determinism_ok else "FAILED")
        )
    return 0 if ok else 1


def _run_stripes(args) -> int:
    import json

    from repro.harness.stripes import StripesSoakConfig, run_stripes_suite

    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else [args.seed]
    )
    config = StripesSoakConfig(
        servers=args.servers if args.servers is not None else 6,
        k=args.k,
        m=args.m,
        fault_profile=args.fault_profile or "crash",
        duration=args.duration,
    )
    if args.objects is not None:
        config = dataclasses.replace(config, objects=args.objects)
    if args.quick:
        config = dataclasses.replace(
            config,
            objects=min(config.objects, 250),
            duration=min(config.duration, 0.5),
        )
    print(
        "Stripes soak: servers=%d k=%d m=%d objects=%d duration=%.2fs "
        "profile=%s seeds=%s"
        % (
            config.servers,
            config.k,
            config.m,
            config.objects,
            config.duration,
            config.fault_profile,
            seeds,
        ),
        file=sys.stderr,
    )
    suite = run_stripes_suite(seeds, config)
    determinism_ok = True
    if args.check_determinism:
        rerun = run_stripes_suite(seeds, config)
        for first, second in zip(suite["reports"], rerun["reports"]):
            match = first["digest"] == second["digest"]
            determinism_ok = determinism_ok and match
            print(
                "seed %d digest %s rerun %s -> %s"
                % (
                    first["config"]["seed"],
                    first["digest"][:16],
                    second["digest"][:16],
                    "identical" if match else "DIVERGED",
                ),
                file=sys.stderr,
            )
        suite["deterministic"] = determinism_ok

    for report in suite["reports"]:
        gates = report["gates"]
        ops = report["ops"]
        comparison = report["comparison"]
        print(
            "seed %-6d %s  overhead %.2fx vs per-object %.2fx (%s), "
            "sets %d/%d, deletes %d/%d, gets %d ok, faults %d"
            % (
                report["config"]["seed"],
                "OK  " if report["ok"] else "FAIL",
                gates["stripes_overhead"],
                gates["per_object_overhead"],
                "OK" if gates["overhead_ok"] else "TOO HIGH",
                ops["set_acks"],
                ops["set_attempts"],
                ops["delete_acks"],
                ops["delete_attempts"],
                ops["get_ok"],
                report["fault_log_entries"],
            )
        )
        for name in ("stripes", "era-ce-cd", "sync-rep"):
            row = comparison[name]
            print(
                "  %-10s amplification %.2fx, goodput %.0f ops/s"
                % (
                    name,
                    row["memory_overhead_ratio"],
                    row["goodput_ops_per_sec"],
                )
            )
        metrics = report["stripe_metrics"]
        print(
            "  stripe path: %d sealed (%d by timeout), %d compactions, "
            "%d rehomed, %d slice reads / %d degraded, %d journal subs"
            % (
                metrics.get("stripes.sealed", 0),
                metrics.get("stripes.seal_timeouts", 0),
                metrics.get("stripes.compactions", 0),
                metrics.get("stripes.objects_rehomed", 0),
                metrics.get("stripes.slice_reads", 0),
                metrics.get("stripes.degraded_reads", 0),
                metrics.get("stripes.journal_substitutes", 0),
            )
        )
        violations = report["violations"]
        for kind in ("lost_writes", "wrong_bytes", "ghost_reads"):
            for violation in violations[kind]:
                print("  %s: %s" % (kind, violation))
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(suite, handle, indent=2, sort_keys=True)
        print("Wrote %s" % args.report, file=sys.stderr)
    ok = suite["ok"] and determinism_ok
    print(
        "Stripe-packing gates %s across %d seed(s)."
        % ("HELD" if suite["ok"] else "VIOLATED", len(seeds))
    )
    if args.check_determinism:
        print(
            "Determinism check %s."
            % ("passed" if determinism_ok else "FAILED")
        )
    return 0 if ok else 1


def _run_overload(args) -> int:
    import json

    from repro.harness.overload import OverloadConfig, run_overload_suite

    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else [args.seed]
    )
    config = OverloadConfig(
        scheme=args.scheme,
        servers=args.servers if args.servers is not None else 6,
        k=args.k,
        m=args.m,
        fault_profile=args.fault_profile or "flashcrowd",
        protection=not args.no_protection,
    )
    print(
        "Overload ramp soak: scheme=%s servers=%d k=%d m=%d profile=%s "
        "rates=%.0f->%.0f ops/s protection=%s contrast=%s seeds=%s"
        % (
            config.scheme,
            config.servers,
            config.k,
            config.m,
            config.fault_profile,
            config.base_rate,
            config.ramp_rate,
            config.protection,
            args.contrast,
            seeds,
        ),
        file=sys.stderr,
    )
    suite = run_overload_suite(seeds, config, contrast=args.contrast)
    determinism_ok = True
    if args.check_determinism:
        rerun = run_overload_suite(seeds, config, contrast=args.contrast)
        for first, second in zip(suite["reports"], rerun["reports"]):
            match = first["digest"] == second["digest"]
            determinism_ok = determinism_ok and match
            print(
                "seed %d digest %s rerun %s -> %s"
                % (
                    first["config"]["seed"],
                    first["digest"][:16],
                    second["digest"][:16],
                    "identical" if match else "DIVERGED",
                ),
                file=sys.stderr,
            )
        suite["deterministic"] = determinism_ok

    for report in suite["reports"]:
        gates = report["gates"]
        phases = report["phases"]
        print(
            "seed %-6d %s  goodput %s (warm %.0f -> recover %.0f ops/s, "
            "floor %.2f), silent-losses %d, issued %d"
            % (
                report["config"]["seed"],
                "OK  " if report["ok"] else "FAIL",
                gates["goodput_ratio"],
                phases["warm"]["goodput"],
                phases["recover"]["goodput"],
                gates["goodput_floor"],
                len(gates["unresolved"]),
                report["ops_issued"],
            )
        )
        protection = report["protection"]
        print(
            "  protection: busy-rejects %d, sheds %d, fast-fails %d, "
            "aimd -%d/+%d, brownout transitions %d, cancels %d"
            % (
                protection["server_busy_rejects"],
                protection["server_sheds"],
                protection["breaker_fast_fails"],
                protection["aimd"]["shrinks"],
                protection["aimd"]["grows"],
                len(protection["brownout_transitions"]),
                protection["cancels_sent"],
            )
        )
        if args.contrast:
            bare = report["unprotected"]["gates"]
            print(
                "  contrast %s: unprotected goodput %s -> gate %s"
                % (
                    "OK" if report["contrast_ok"] else "FAIL",
                    bare["goodput_ratio"],
                    "failed as expected"
                    if not bare["goodput_ok"]
                    else "PASSED (ramp has no teeth)",
                )
            )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(suite, handle, indent=2, sort_keys=True)
        print("Wrote %s" % args.report, file=sys.stderr)
    ok = suite["ok"] and determinism_ok
    print(
        "Overload gates %s across %d seed(s)."
        % ("HELD" if suite["ok"] else "VIOLATED", len(seeds))
    )
    if args.check_determinism:
        print(
            "Determinism check %s."
            % ("passed" if determinism_ok else "FAILED")
        )
    return 0 if ok else 1


def main(argv=None) -> int:
    """Entry point: parse arguments, run the experiment, print its table."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate a figure from the ICDCS'17 paper.",
    )
    parser.add_argument(
        "figure",
        nargs="?",
        help="experiment id (one of: %s)" % ", ".join(sorted(_SCALES)),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full-scale parameters (slow)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        help=(
            "export one Chrome trace JSON per run into DIR (open in "
            "Perfetto or chrome://tracing); fig8, fig9, fig11, fig12 only"
        ),
    )
    bench_group = parser.add_argument_group("bench options")
    bench_group.add_argument(
        "--quick",
        action="store_true",
        help="bench: short calibration windows (CI smoke runs)",
    )
    bench_group.add_argument(
        "--output",
        metavar="FILE",
        help="bench: write the report (JSON) to FILE",
    )
    bench_group.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "bench: compare against a previous report; with --output, the "
            "file gets a combined before/after/speedup document"
        ),
    )
    bench_group.add_argument(
        "--gate",
        nargs="*",
        metavar="METRIC",
        help=(
            "bench: fail (exit 1) when a gated metric regresses more than "
            "--fail-under vs --baseline; without arguments gates %s"
            % ", ".join(_BENCH_GATE_DEFAULTS)
        ),
    )
    bench_group.add_argument(
        "--fail-under",
        type=float,
        default=0.90,
        metavar="RATIO",
        help=(
            "bench: minimum after/before ratio a gated metric must keep "
            "(default 0.90, i.e. fail on a >10%% drop)"
        ),
    )
    chaos_group = parser.add_argument_group("chaos options")
    chaos_group.add_argument(
        "--seed", type=int, default=0, help="chaos: soak seed (default 0)"
    )
    chaos_group.add_argument(
        "--seeds",
        metavar="N,N,...",
        help="chaos: comma-separated seed list (overrides --seed)",
    )
    chaos_group.add_argument(
        "--duration",
        type=float,
        default=1.0,
        help="chaos: virtual seconds of faulted load (default 1.0)",
    )
    chaos_group.add_argument(
        "--scheme",
        default="era-ce-cd",
        help="chaos: resilience scheme under test (default era-ce-cd)",
    )
    chaos_group.add_argument(
        "--servers",
        type=int,
        default=None,
        help="cluster size (default 6; gossip defaults to 1000)",
    )
    chaos_group.add_argument(
        "--k", type=int, default=3, help="chaos: data chunks per stripe"
    )
    chaos_group.add_argument(
        "--m", type=int, default=2, help="chaos: parity chunks per stripe"
    )
    chaos_group.add_argument(
        "--fault-profile",
        default=None,
        help=(
            "fault profile (none, network, crash, gray, rot, churn, "
            "scale, all); default: all for chaos, scale for scale, rot "
            "for scrub"
        ),
    )
    chaos_group.add_argument(
        "--report",
        metavar="FILE",
        help="chaos: write the full JSON report to FILE",
    )
    chaos_group.add_argument(
        "--check-determinism",
        action="store_true",
        help="chaos: run every seed twice and require identical digests",
    )
    scale_group = parser.add_argument_group("scale options")
    scale_group.add_argument(
        "--bandwidth",
        type=float,
        default=None,
        metavar="MIB_S",
        help="scale: rebuild bandwidth cap in MiB per virtual second "
        "(default 24)",
    )
    scale_group.add_argument(
        "--join",
        type=int,
        default=2,
        metavar="N",
        help="scale: number of servers joined mid-run (default 2)",
    )
    scale_group.add_argument(
        "--keys",
        type=int,
        default=None,
        metavar="N",
        help=(
            "scale: per-client key space (default 48; --quick uses 24; "
            "an explicit value overrides both)"
        ),
    )
    scale_group.add_argument(
        "--clients",
        type=int,
        default=None,
        metavar="N",
        help="scale: number of workload clients (default 2)",
    )
    gossip_group = parser.add_argument_group("gossip options")
    gossip_group.add_argument(
        "--period",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="gossip: SWIM protocol period in virtual seconds "
        "(default 0.05)",
    )
    gossip_group.add_argument(
        "--crashes",
        type=int,
        default=5,
        metavar="N",
        help="gossip: staggered fail-stop victims in the crash phase "
        "(default 5; --quick caps at 3)",
    )
    stripes_group = parser.add_argument_group("stripes options")
    stripes_group.add_argument(
        "--objects",
        type=int,
        default=None,
        metavar="N",
        help="stripes: objects written per scheme in the comparison "
        "phase (default 500; --quick caps at 250)",
    )
    scrub_group = parser.add_argument_group("scrub options")
    scrub_group.add_argument(
        "--scan-period",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="scrub: target duration of one full background pass over "
        "every chunk location (default 0.25)",
    )
    scrub_group.add_argument(
        "--audit-period",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="scrub: virtual seconds between sampling audits "
        "(default 0.5; 0 disables them)",
    )
    scrub_group.add_argument(
        "--epsilon",
        type=float,
        default=1e-2,
        metavar="EPS",
        help="scrub: audit certificate confidence target 1-eps "
        "(default 0.01)",
    )
    scrub_group.add_argument(
        "--p-bound",
        type=float,
        default=0.1,
        metavar="P",
        help="scrub: unreadable-fraction bound the audit certifies "
        "against (default 0.1)",
    )
    overload_group = parser.add_argument_group("overload options")
    overload_group.add_argument(
        "--no-protection",
        action="store_true",
        help="overload: run with admission control and the client guard "
        "disabled (demonstrates the metastable collapse)",
    )
    overload_group.add_argument(
        "--contrast",
        action="store_true",
        help="overload: run each seed protected AND unprotected; pass only "
        "if protection clears the gates and its absence fails goodput",
    )
    args = parser.parse_args(argv)

    if args.list or not args.figure:
        for name, runner in sorted(experiments.EXPERIMENTS.items()):
            doc = (runner.__doc__ or "").strip().splitlines()[0]
            print("%-7s %s" % (name, doc))
        print("bench   wall-clock perf suite (codec MB/s, events/sec, ops/sec)")
        print("chaos   seeded fault-injection soak (durability invariant)")
        print(
            "scale   elasticity experiment (join/decommission under load, "
            "throttled rebuild)"
        )
        print(
            "overload open-loop ramp soak (admission control, breakers, "
            "brownout; goodput-recovery gate)"
        )
        print(
            "gossip  SWIM membership churn soak (time-to-detect, O(1) "
            "load, epoch spread; determinism gate)"
        )
        print(
            "stripes small-object stripe-packing soak (memory overhead "
            "vs per-object coding; delete/compaction durability)"
        )
        print(
            "scrub   integrity-scrubbing soak (bit rot vs background "
            "scanner; bounded detection, sampling-audit honesty, "
            "foreground-p99 gates)"
        )
        return 0

    if args.figure.lower() == "bench":
        return _run_bench(args)

    if args.figure.lower() == "chaos":
        return _run_chaos(args)

    if args.figure.lower() == "scale":
        return _run_scale(args)

    if args.figure.lower() == "overload":
        return _run_overload(args)

    if args.figure.lower() == "gossip":
        return _run_gossip(args)

    if args.figure.lower() == "stripes":
        return _run_stripes(args)

    if args.figure.lower() == "scrub":
        return _run_scrub(args)

    figure = args.figure.lower()
    if figure not in experiments.EXPERIMENTS:
        parser.error(
            "unknown experiment %r (use --list to see choices)" % args.figure
        )
    runner = experiments.EXPERIMENTS[figure]
    ci_kwargs, full_kwargs = _SCALES[figure]
    kwargs = dict(full_kwargs if args.full else ci_kwargs)
    if args.trace_dir:
        if figure not in _TRACEABLE:
            parser.error(
                "--trace-dir is supported for: %s" % ", ".join(sorted(_TRACEABLE))
            )
        kwargs["trace_dir"] = args.trace_dir
    print(
        "Running %s (%s scale) ..." % (figure, "full" if args.full else "CI"),
        file=sys.stderr,
    )
    rows = runner(**kwargs)
    print(_rows_to_table(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
