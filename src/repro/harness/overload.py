"""The overload ramp soak: drive the cluster past saturation, on purpose.

One seeded run fires an **open-loop** workload — operations are issued on
a fixed clock whether or not earlier ones completed, like real traffic —
through three phases: a *warm* phase at a sustainable rate, a *ramp*
phase far past the cluster's CPU capacity, and a *recover* phase back at
the warm rate.  Servers run single worker threads under a heavy
``cpu_throttle`` so the bottleneck is server CPU (the shed-able resource
admission control governs), not the wire.

Two gates decide the verdict:

**Goodput recovery** — goodput is successful completions within the SLO,
attributed to the phase that *issued* them.  The recover phase's goodput
rate must be at least ``goodput_floor`` (default 80%) of the warm
phase's.  With protection on, admission control sheds stale queue,
breakers fast-fail during the flood, and AIMD shrinks in-flight work, so
the backlog drains and recover-phase traffic meets its SLO again.  With
protection off the same ramp leaves deep zombie queues and retry
amplification — the classic metastable failure — and this gate must
demonstrably *fail* (the ``contrast`` mode asserts exactly that).

**No silent losses** — every operation ever issued must resolve to a
typed :class:`~repro.store.result.OpResult` (success, SERVER_BUSY,
TIMEOUT, ...) by the end of the run.  Load shedding is only safe if
rejection is a *first-class answer*, never a dropped request.

Determinism: the run derives from one seed; the report carries a SHA-256
digest over per-phase operation counts, protection counters and the
server/client metrics slice — identical seeds must produce identical
digests.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.common.payload import Payload
from repro.common.stats import Summary
from repro.faults.engine import ChaosEngine
from repro.faults.profiles import profile_by_name
from repro.store.client import KVStoreError
from repro.store.policy import OVERLOAD_POLICY, RetryPolicy

KIB = 1024

#: issue-time phase tags, in order
PHASES = ("warm", "ramp", "recover")


@dataclass
class OverloadConfig:
    """One ramp soak's shape.  Times are virtual seconds."""

    seed: int = 0
    net_profile: str = "ri-qdr"
    scheme: str = "era-ce-cd"
    servers: int = 6
    k: int = 3
    m: int = 2
    #: message-level background noise; node faults stay off on purpose
    fault_profile: str = "flashcrowd"
    #: the knob under test: admission control + client-side guard on/off
    protection: bool = True
    num_clients: int = 4
    key_space: int = 48
    value_size: int = 4 * KIB
    set_fraction: float = 0.5
    #: single-threaded, CPU-throttled servers: the bottleneck admission
    #: control actually governs (wire queues cannot be shed)
    worker_threads: int = 1
    cpu_throttle: float = 300.0
    #: phase durations
    warm: float = 0.4
    ramp: float = 0.4
    recover: float = 0.8
    #: cluster-wide open-loop issue rates (ops per virtual second)
    base_rate: float = 1500.0
    ramp_rate: float = 14000.0
    #: an op "counts" toward goodput when it succeeds within this budget
    slo: float = 0.05
    #: recover-phase goodput must reach this fraction of warm-phase goodput
    goodput_floor: float = 0.8
    #: head of the warm/recover windows excluded from goodput accounting
    #: (warmup transient / backlog still draining right at the ramp edge)
    settle: float = 0.2


#: per-request deadline and retry shape shared by both modes — only the
#: protection machinery differs, so the contrast is apples to apples.
_SOAK_POLICY = RetryPolicy(
    request_timeout=0.02,
    op_deadline=0.25,
    max_retries=3,
    hedge=True,
)


class _OpRecord:
    """One issued operation: who, when, and how it resolved."""

    __slots__ = ("op", "issued_at", "phase", "handle", "completed_at")

    def __init__(self, op: str, issued_at: float, phase: str, handle):
        self.op = op
        self.issued_at = issued_at
        self.phase = phase
        self.handle = handle
        self.completed_at: Optional[float] = None

    @property
    def resolved(self) -> bool:
        return self.handle.result is not None

    @property
    def ok(self) -> bool:
        return self.handle.result is not None and self.handle.result.ok

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at


def _value_bytes(key: str, seq: int, size: int) -> bytes:
    stamp = ("%s#%d|" % (key, seq)).encode()
    reps = size // len(stamp) + 1
    return (stamp * reps)[:size]


def _latency_summary(samples: List[float]) -> Optional[dict]:
    if not samples:
        return None
    summary = Summary.of(samples).scaled(1e3)  # milliseconds
    return {
        "count": summary.count,
        "mean_ms": round(summary.mean, 4),
        "p50_ms": round(summary.p50, 4),
        "p99_ms": round(summary.p99, 4),
        "max_ms": round(summary.maximum, 4),
    }


def run_overload(config: OverloadConfig) -> dict:
    """Execute one seeded ramp soak; returns the JSON-able report."""
    from repro.core.cluster import build_cluster

    profile = profile_by_name(config.fault_profile)
    cluster = build_cluster(
        profile=config.net_profile,
        scheme=config.scheme,
        servers=config.servers,
        k=config.k,
        m=config.m,
        worker_threads=config.worker_threads,
    )
    sim = cluster.sim

    policy = _SOAK_POLICY
    if config.protection:
        policy = RetryPolicy(
            request_timeout=_SOAK_POLICY.request_timeout,
            op_deadline=_SOAK_POLICY.op_deadline,
            max_retries=_SOAK_POLICY.max_retries,
            hedge=_SOAK_POLICY.hedge,
            overload=OVERLOAD_POLICY,
        )
        cluster.config.with_admission_control()
    cluster.config.harden(policy)
    for server in cluster.servers.values():
        server.peer_timeout = policy.request_timeout
        server.cpu_throttle = config.cpu_throttle

    master = random.Random(config.seed)
    chaos = ChaosEngine(cluster, profile, seed=master.getrandbits(64))

    clients = []
    rngs = []
    for _ in range(config.num_clients):
        clients.append(cluster.add_client(name_hint="ramp"))
        rngs.append(random.Random(master.getrandbits(64)))

    duration = config.warm + config.ramp + config.recover
    marks = {"t0": None}
    records: List[_OpRecord] = []

    def _phase_of(offset: float) -> str:
        if offset < config.warm:
            return "warm"
        if offset < config.warm + config.ramp:
            return "ramp"
        return "recover"

    def _rate_at(offset: float) -> float:
        if config.warm <= offset < config.warm + config.ramp:
            return config.ramp_rate
        return config.base_rate

    def _issue(client, rng, tag: str, seqs: dict) -> _OpRecord:
        key = "%s:k%03d" % (tag, rng.randrange(config.key_space))
        offset = sim.now - marks["t0"]
        if rng.random() < config.set_fraction:
            seqs[key] = seqs.get(key, 0) + 1
            data = _value_bytes(key, seqs[key], config.value_size)
            handle = client.iset(key, Payload.from_bytes(data))
            op = "set"
        else:
            handle = client.iget(key)
            op = "get"
        record = _OpRecord(op, sim.now, _phase_of(offset), handle)

        def _mark_done(_event) -> None:
            record.completed_at = sim.now

        handle.done.callbacks.append(_mark_done)
        records.append(record)
        return record

    def _issuer(client, rng, tag: str):
        seqs: dict = {}
        while True:
            offset = sim.now - marks["t0"]
            if offset >= duration:
                return
            rate = _rate_at(offset) / config.num_clients
            yield sim.timeout(rng.expovariate(rate))
            if sim.now - marks["t0"] >= duration:
                return
            _issue(client, rng, tag, seqs)

    def _driver():
        # Prefill every client's key range with blocking Sets so the
        # workload's Gets hit real stripes, then open the floodgates.
        for index, client in enumerate(clients):
            for knum in range(config.key_space):
                key = "c%d:k%03d" % (index, knum)
                data = _value_bytes(key, 0, config.value_size)
                try:
                    yield from client.set(key, Payload.from_bytes(data))
                except KVStoreError:
                    pass
        marks["t0"] = sim.now
        chaos.start(horizon=duration)
        for index, (client, rng) in enumerate(zip(clients, rngs)):
            sim.process(
                _issuer(client, rng, "c%d" % index),
                name="%s-load" % client.name,
            )

    sim.process(_driver(), name="overload-driver")
    cluster.run()  # to quiescence: every handle resolves or times out
    chaos.heal_all()
    chaos.uninstall()

    # -- gate 1: no silent losses ------------------------------------------
    unresolved = [
        {"op": r.op, "phase": r.phase, "issued_at": round(r.issued_at, 6)}
        for r in records
        if not r.resolved
    ]
    silent_ok = not unresolved

    # -- gate 2: goodput recovery ------------------------------------------
    t0 = marks["t0"]
    windows = {
        "warm": (t0 + config.settle, t0 + config.warm),
        "ramp": (t0 + config.warm, t0 + config.warm + config.ramp),
        "recover": (
            t0 + config.warm + config.ramp + config.settle,
            t0 + duration,
        ),
    }

    phases = {}
    for phase in PHASES:
        start, end = windows[phase]
        issued = [r for r in records if start <= r.issued_at < end]
        ok = [r for r in issued if r.ok]
        good = [
            r
            for r in ok
            if r.latency is not None and r.latency <= config.slo
        ]
        busy = sum(
            1
            for r in issued
            if r.resolved and r.handle.result.error.name == "SERVER_BUSY"
        )
        timeouts = sum(
            1
            for r in issued
            if r.resolved and r.handle.result.error.name == "TIMEOUT"
        )
        degraded = sum(
            1 for r in issued if r.resolved and r.handle.result.is_degraded
        )
        span = end - start
        phases[phase] = {
            "window": [round(start - t0, 6), round(end - t0, 6)],
            "issued": len(issued),
            "ok": len(ok),
            "within_slo": len(good),
            "busy_rejected": busy,
            "timed_out": timeouts,
            "degraded": degraded,
            "goodput": round(len(good) / span, 3) if span > 0 else 0.0,
            "latency": _latency_summary(
                [r.latency for r in ok if r.latency is not None]
            ),
        }

    pre = phases["warm"]["goodput"]
    post = phases["recover"]["goodput"]
    goodput_ratio = round(post / pre, 4) if pre > 0 else None
    goodput_ok = (
        goodput_ratio is not None and goodput_ratio >= config.goodput_floor
    )

    # -- protection-machinery observability --------------------------------
    snapshot = {}
    for prefix in ("server.", "client.", "reads.", "writes."):
        snapshot.update(cluster.metrics.snapshot(prefix))
    brownout_transitions = []
    breaker_trips = 0
    aimd = {"shrinks": 0, "grows": 0}
    for client in clients:
        if client.guard is None:
            continue
        breaker_trips += sum(
            len(b.history) for b in client.guard._breakers.values()
        )
        if client.guard.aimd is not None:
            aimd["shrinks"] += client.guard.aimd.shrinks
            aimd["grows"] += client.guard.aimd.grows
        for when, before, after in client.guard.brownout.history:
            brownout_transitions.append(
                [round(when - t0, 6), int(before), int(after)]
            )
    brownout_transitions.sort()

    def _counter(name: str) -> int:
        value = snapshot.get(name, 0)
        return value if isinstance(value, int) else 0

    protection = {
        "enabled": config.protection,
        "server_busy_rejects": sum(
            _counter("server.%s.rejected" % name) for name in cluster.servers
        ),
        "server_sheds": sum(
            _counter("server.%s.shed" % name) for name in cluster.servers
        ),
        "breaker_fast_fails": _counter("client.breaker.fast_fails"),
        "breaker_transitions": breaker_trips,
        "aimd": aimd,
        "brownout_transitions": brownout_transitions,
        "read_repair": {
            "enqueued": _counter("client.read_repair.enqueued"),
            "dropped": _counter("client.read_repair.dropped"),
        },
        "cancels_sent": _counter("client.cancels_sent"),
    }

    fault_log = [[t, kind, detail] for t, kind, detail in chaos.fault_log]
    digest_input = {
        "config": {
            "seed": config.seed,
            "scheme": config.scheme,
            "fault_profile": config.fault_profile,
            "servers": config.servers,
            "k": config.k,
            "m": config.m,
            "protection": config.protection,
            "base_rate": config.base_rate,
            "ramp_rate": config.ramp_rate,
            "slo": config.slo,
        },
        "phases": {
            name: {
                key: value
                for key, value in phase.items()
                if key != "latency"
            }
            for name, phase in phases.items()
        },
        "protection": protection,
        "unresolved": unresolved,
        "fault_log": fault_log,
        "metrics": {
            name: value for name, value in sorted(snapshot.items())
        },
    }
    digest = hashlib.sha256(
        json.dumps(digest_input, sort_keys=True).encode()
    ).hexdigest()

    return {
        "config": digest_input["config"],
        "ok": silent_ok and goodput_ok,
        "gates": {
            "goodput_ok": goodput_ok,
            "goodput_ratio": goodput_ratio,
            "goodput_floor": config.goodput_floor,
            "silent_ok": silent_ok,
            "unresolved": unresolved,
        },
        "phases": phases,
        "protection": protection,
        "ops_issued": len(records),
        "fault_log_entries": len(fault_log),
        "virtual_time": sim.now,
        "digest": digest,
    }


def run_overload_suite(
    seeds: List[int],
    config: Optional[OverloadConfig] = None,
    contrast: bool = False,
) -> dict:
    """Run the ramp soak across seeds; aggregate verdict + reports.

    With ``contrast=True`` every seed is run twice — protection on and
    off — and the suite only passes if the protected run clears both
    gates **and** the unprotected run fails the goodput gate (proving
    the gate has teeth, not that the ramp is trivially survivable).
    """
    import dataclasses

    base = config or OverloadConfig()
    if contrast:
        base = dataclasses.replace(base, protection=True)
    reports = []
    for seed in seeds:
        report = run_overload(dataclasses.replace(base, seed=seed))
        if contrast:
            bare = run_overload(
                dataclasses.replace(base, seed=seed, protection=False)
            )
            report["unprotected"] = {
                "gates": bare["gates"],
                "phases": bare["phases"],
                "digest": bare["digest"],
            }
            report["contrast_ok"] = (
                report["ok"] and not bare["gates"]["goodput_ok"]
            )
        reports.append(report)
    ok = all(r["ok"] for r in reports)
    if contrast:
        ok = ok and all(r["contrast_ok"] for r in reports)
    return {"ok": ok, "seeds": list(seeds), "reports": reports}
