"""The elasticity experiment: scale out and in under live load.

One seeded run drives a steady foreground workload while the cluster's
membership changes underneath it — a scale-out (two fresh servers join
and the ring rebalances onto them) followed by a decommission (one
original server is forcibly removed, so its chunks are re-encoded from
``k`` survivors).  The chaos engine stays active throughout, so the
migration machinery is exercised under crashes and jitter, not in a
clean room.

Three properties are checked and reported:

**Durability** — every acknowledged Set remains readable with the exact
acknowledged bytes after both transitions complete (same model-based
checking as the chaos soak: single-writer clients, uncertain keys
excluded from lost-write accounting).

**Throttling** — rebuild traffic is paced by the slot-clock
:class:`~repro.membership.rebuild.BandwidthThrottle`; the report
recomputes the bytes attributed to every time window from the slot log
and asserts the peak observed rate never exceeds the configured cap.

**Foreground interference** — Get latency is sampled continuously and
split at the transition timestamps; the p99 during migration must stay
within 2x the no-migration baseline.

Determinism: the whole run derives from one seed; the report's SHA-256
digest covers the plan digests, operation counts, fault log and rebuild
counters — identical seeds must produce identical digests.
"""

from __future__ import annotations

import hashlib
import json
import random
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.payload import Payload
from repro.common.stats import Summary
from repro.faults.engine import ChaosEngine
from repro.faults.profiles import profile_by_name
from repro.store.client import KVStoreError
from repro.store.policy import HARDENED_POLICY

MIB = 1024 * 1024


@dataclass
class ScaleConfig:
    """One scale run's shape.  Times are virtual seconds."""

    seed: int = 0
    net_profile: str = "ri-qdr"
    scheme: str = "era-ce-cd"
    servers: int = 6
    k: int = 3
    m: int = 2
    #: background noise while the migrations run ("none" for clean runs)
    fault_profile: str = "scale"
    num_clients: int = 2
    key_space: int = 48
    value_size: int = 16 * 1024
    set_fraction: float = 0.4
    #: mean think time between a client's operations
    op_gap: float = 1e-3
    #: steady-state load before the first transition (the p99 baseline)
    baseline: float = 0.4
    #: servers joined in the scale-out step
    join: int = 2
    #: forcibly remove one original server after the scale-out
    decommission: bool = True
    #: rebuild bandwidth cap, bytes per virtual second (None = unthrottled)
    bandwidth: Optional[float] = 24.0 * MIB
    #: rebuild concurrency window (per-key workers)
    window: int = 4
    #: trailing load after the last transition completes
    cooldown: float = 0.2
    #: rebuild crashed servers' chunks while the run is still going
    repair: bool = True
    #: window size for the throttle-verification rate series
    rate_window: float = 0.01
    #: foreground interference bound: migration p99 <= ratio * baseline p99
    max_p99_ratio: float = 2.0


class _ClientModel:
    """What one single-writer client believes about its keys."""

    def __init__(self, name: str):
        self.name = name
        self.acked: Dict[str, bytes] = {}
        self.last_attempt: Dict[str, bytes] = {}
        self.uncertain: set = set()
        self.seq = 0
        self.set_attempts = 0
        self.set_acks = 0
        self.get_attempts = 0
        self.get_ok = 0
        self.unavailable = 0


def _value_bytes(key: str, seq: int, size: int) -> bytes:
    stamp = ("%s#%d|" % (key, seq)).encode()
    reps = size // len(stamp) + 1
    return (stamp * reps)[:size]


def _latency_summary(samples: List[float]) -> Optional[dict]:
    if not samples:
        return None
    summary = Summary.of(samples).scaled(1e6)  # microseconds
    return {
        "count": summary.count,
        "mean_us": round(summary.mean, 3),
        "p50_us": round(summary.p50, 3),
        "p99_us": round(summary.p99, 3),
        "max_us": round(summary.maximum, 3),
    }


def _p99(samples: List[float]) -> Optional[float]:
    if not samples:
        return None
    return Summary.of(samples).p99


def peak_rss_mib() -> Optional[float]:
    """Peak resident set size of this process in MiB (None if unknown)."""
    try:
        import resource
    except ImportError:
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":
        return rss / (1024.0 * 1024.0)
    return rss / 1024.0


def run_scale(config: ScaleConfig) -> dict:
    """Execute one seeded scale experiment; returns the JSON-able report."""
    from repro.core.cluster import build_cluster
    from repro.membership.manager import MembershipManager
    from repro.resilience.recovery import RepairManager

    profile = profile_by_name(config.fault_profile)
    build_t0 = time.perf_counter()
    cluster = build_cluster(
        profile=config.net_profile,
        scheme=config.scheme,
        servers=config.servers,
        k=config.k,
        m=config.m,
    )
    build_seconds = time.perf_counter() - build_t0
    cluster.config.harden(HARDENED_POLICY)
    for server in cluster.servers.values():
        server.peer_timeout = HARDENED_POLICY.request_timeout
    sim = cluster.sim
    tolerated = cluster.scheme.tolerated_failures

    # The bandwidth-capped manager replaces the lazy unthrottled default;
    # everything (harness transitions, chaos churn, repair pacing) then
    # shares one throttle.
    manager = MembershipManager(
        cluster, bandwidth=config.bandwidth, window=config.window
    )
    cluster._manager = manager

    master = random.Random(config.seed)
    chaos = None
    if config.fault_profile != "none":
        # Reserve one tolerated failure for the decommission step: chaos
        # crashes plus the forcibly removed server must stay within the
        # code's tolerance or durability is not a fair invariant.
        slack = 1 if config.decommission else 0
        chaos = ChaosEngine(
            cluster,
            profile,
            seed=master.getrandbits(64),
            max_degraded=max(0, tolerated - slack),
        )

    violations = {"lost_writes": [], "wrong_bytes": []}
    models: List[_ClientModel] = []
    clients = []
    rngs = []
    for _ in range(config.num_clients):
        client = cluster.add_client(name_hint="scale")
        clients.append(client)
        models.append(_ClientModel(client.name))
        rngs.append(random.Random(master.getrandbits(64)))

    def _tracked_keys() -> List[str]:
        keys = set()
        for model in models:
            keys.update(model.acked)
            keys.update(model.last_attempt)
        return sorted(keys)

    # -- in-run repair (same contract as the chaos soak) -------------------
    def _on_crash(name: str) -> None:
        if not config.repair:
            return
        sim.process(_repair_proc(name), name="scale-repair-%s" % name)

    def _repair_proc(name):
        repairer = RepairManager(
            cluster, cluster.scheme, throttle=manager.scheduler.throttle
        )
        for _attempt in range(3):
            yield sim.timeout(0.01)
            yield from repairer.repair_server(name, _tracked_keys())
            if not _holes_on(name):
                break
        if chaos is not None:
            chaos.mark_repaired(name)

    def _holes_on(name: str) -> List[str]:
        from repro.resilience.erasure import chunk_key

        scheme = cluster.scheme
        if not hasattr(scheme, "chunk_servers") or name not in cluster.servers:
            return []
        server = cluster.servers[name]
        holes = []
        for model in models:
            for key in model.acked:
                placed = scheme.chunk_servers(cluster.ring, key)
                for index, holder in enumerate(placed):
                    if holder != name:
                        continue
                    if not server.alive or server.cache.peek(
                        chunk_key(key, index)
                    ) is None:
                        holes.append(key)
                        break
        return holes

    if chaos is not None:
        chaos.on_crash = _on_crash

    # -- the workload ------------------------------------------------------
    stop = {"now": False}
    #: (completion time, latency) per successful Get — sliced at the
    #: transition timestamps to separate baseline from migration p99
    get_samples: List[Tuple[float, float]] = []

    def _check_read(model, key, value, stage):
        expected = model.acked.get(key)
        if value is None or not value.has_data:
            if expected is not None and key not in model.uncertain:
                violations["lost_writes"].append(
                    {"key": key, "stage": stage, "reason": "miss"}
                )
            return
        if stage == "run":
            model.get_ok += 1
        data = value.data
        if key in model.uncertain:
            legal = {expected, model.last_attempt.get(key)}
            legal.discard(None)
            if legal and data not in legal:
                violations["wrong_bytes"].append(
                    {"key": key, "stage": stage, "reason": "uncertain-mismatch"}
                )
        elif expected is not None and data != expected:
            violations["wrong_bytes"].append(
                {"key": key, "stage": stage, "reason": "mismatch"}
            )

    def _worker(client, rng, model):
        while not stop["now"]:
            yield sim.timeout(rng.expovariate(1.0 / config.op_gap))
            if stop["now"]:
                return
            key = "%s:k%03d" % (model.name, rng.randrange(config.key_space))
            if rng.random() < config.set_fraction:
                model.seq += 1
                model.set_attempts += 1
                data = _value_bytes(key, model.seq, config.value_size)
                model.last_attempt[key] = data
                try:
                    acked = yield from client.set(key, Payload.from_bytes(data))
                except KVStoreError:
                    acked = False
                if acked:
                    model.acked[key] = data
                    model.uncertain.discard(key)
                    model.set_acks += 1
                else:
                    model.uncertain.add(key)
            else:
                model.get_attempts += 1
                started = sim.now
                try:
                    value = yield from client.get(key)
                except KVStoreError:
                    model.unavailable += 1
                    continue
                if value is not None and value.has_data:
                    get_samples.append((sim.now, sim.now - started))
                _check_read(model, key, value, stage="run")

    # -- the elasticity driver ---------------------------------------------
    marks = {"migration_start": None, "migration_end": None}
    joined = ["joiner-%d" % i for i in range(config.join)]
    victim = "server-%d" % (config.servers - 1)

    def _driver():
        if chaos is not None:
            # fault horizon: generous upper bound; the run ends when the
            # driver flips `stop`, and heal_all() cleans up behind it
            chaos.start(horizon=config.baseline * 50 + 10.0)
        yield sim.timeout(config.baseline)
        marks["migration_start"] = sim.now
        yield from manager.scale_out(joined)
        if config.decommission:
            yield from manager.scale_in(victim, graceful=False)
        marks["migration_end"] = sim.now
        yield sim.timeout(config.cooldown)
        stop["now"] = True

    for client, rng, model in zip(clients, rngs, models):
        sim.process(_worker(client, rng, model), name="%s-load" % client.name)
    sim.process(_driver(), name="scale-driver")
    cluster.run()

    # -- heal, final repair, clean-room durability sweep -------------------
    if chaos is not None:
        chaos.heal_all()
        chaos.uninstall()
        leftovers = sorted(chaos.unrepaired & set(cluster.servers))
        if leftovers:

            def _final_repairs():
                repairer = RepairManager(cluster, cluster.scheme)
                for name in leftovers:
                    yield from repairer.repair_server(name, _tracked_keys())
                    chaos.mark_repaired(name)

            sim.process(_final_repairs(), name="scale-final-repair")
            cluster.run()

    def _sweep():
        client = cluster.add_client(name_hint="sweep")
        for model in models:
            for key in sorted(set(model.acked) | model.uncertain):
                try:
                    value = yield from client.get(key)
                except KVStoreError as exc:
                    if key in model.acked and key not in model.uncertain:
                        violations["lost_writes"].append(
                            {"key": key, "stage": "sweep", "reason": str(exc)}
                        )
                    continue
                _check_read(model, key, value, stage="sweep")

    sim.process(_sweep(), name="scale-sweep")
    cluster.run()

    # -- verification ------------------------------------------------------
    durability_ok = (
        not violations["lost_writes"] and not violations["wrong_bytes"]
    )

    throttle = manager.scheduler.throttle
    peak_rate = throttle.peak_rate(config.rate_window)
    throttle_ok = (
        config.bandwidth is None
        # slot-clock construction: allow only float rounding slack
        or peak_rate <= config.bandwidth * (1.0 + 1e-9)
    )

    start, end = marks["migration_start"], marks["migration_end"]
    baseline_lat = [lat for t, lat in get_samples if t < start]
    migration_lat = [lat for t, lat in get_samples if start <= t <= end]
    base_p99 = _p99(baseline_lat)
    mig_p99 = _p99(migration_lat)
    p99_ratio = (
        mig_p99 / base_p99 if base_p99 and mig_p99 is not None else None
    )
    latency_ok = p99_ratio is None or p99_ratio <= config.max_p99_ratio

    snapshot = cluster.metrics.snapshot()
    rebuild_metrics = {
        name: value
        for name, value in sorted(snapshot.items())
        if name.split(".")[0] in ("rebuild", "membership", "reads")
    }
    faults_injected = {
        name: value
        for name, value in sorted(snapshot.items())
        if name.startswith("faults.")
    }

    ops = {
        "set_attempts": sum(m.set_attempts for m in models),
        "set_acks": sum(m.set_acks for m in models),
        "get_attempts": sum(m.get_attempts for m in models),
        "get_ok": sum(m.get_ok for m in models),
        "unavailable": sum(m.unavailable for m in models),
    }
    transitions = [
        {
            "epoch": record["epoch"],
            "plan": record["plan"],
            "stats": {
                key: value
                for key, value in record["stats"].items()
                if key != "failures"
            },
            "failures": record["stats"]["failures"],
        }
        for record in manager.history
    ]
    fault_log = (
        [[t, kind, detail] for t, kind, detail in chaos.fault_log]
        if chaos is not None
        else []
    )
    digest_input = {
        "config": {
            "seed": config.seed,
            "scheme": config.scheme,
            "fault_profile": config.fault_profile,
            "servers": config.servers,
            "k": config.k,
            "m": config.m,
            "join": config.join,
            "decommission": config.decommission,
            "bandwidth": config.bandwidth,
            "window": config.window,
        },
        "ops": ops,
        "plans": [t["plan"] for t in transitions],
        "fault_log": fault_log,
        "rebuild": rebuild_metrics,
        "violations": violations,
    }
    digest = hashlib.sha256(
        json.dumps(digest_input, sort_keys=True).encode()
    ).hexdigest()

    return {
        "config": digest_input["config"],
        "ok": durability_ok and throttle_ok and latency_ok,
        "durability": {
            "ok": durability_ok,
            "acked_keys": sum(len(m.acked) for m in models),
            "violations": violations,
        },
        "throttle": {
            "ok": throttle_ok,
            "bandwidth_cap": config.bandwidth,
            "peak_rate": peak_rate,
            "rate_window": config.rate_window,
            "total_bytes": throttle.total_bytes,
            "slots": len(throttle.slots),
        },
        "latency": {
            "ok": latency_ok,
            "baseline_get": _latency_summary(baseline_lat),
            "migration_get": _latency_summary(migration_lat),
            "p99_ratio": round(p99_ratio, 4) if p99_ratio is not None else None,
            "max_p99_ratio": config.max_p99_ratio,
        },
        "transitions": transitions,
        "membership": {
            "final_epoch": cluster.membership.current.number,
            "final_servers": sorted(cluster.servers),
            "migration_window": [start, end],
        },
        "ops": ops,
        "rebuild_metrics": rebuild_metrics,
        "faults_injected": faults_injected,
        "fault_log_entries": len(fault_log),
        "virtual_time": sim.now,
        # Wall-clock resource footprint — deliberately outside the digest
        # (it varies run to run; the digest must not).
        "resources": {
            "cluster_build_seconds": round(build_seconds, 6),
            "peak_rss_mib": peak_rss_mib(),
        },
        "digest": digest,
    }


def run_scale_suite(
    seeds: List[int], config: Optional[ScaleConfig] = None
) -> dict:
    """Run the scale experiment across seeds; aggregate verdict + reports."""
    import dataclasses

    base = config or ScaleConfig()
    reports = []
    for seed in seeds:
        reports.append(run_scale(dataclasses.replace(base, seed=seed)))
    return {
        "ok": all(r["ok"] for r in reports),
        "seeds": list(seeds),
        "reports": reports,
    }
