"""Wall-clock performance benchmark suite (``python -m repro.harness bench``).

The figure benchmarks under ``benchmarks/`` report *virtual-time* results;
this module measures the *harness itself* in wall-clock terms:

- **encode/decode MB/s** per erasure codec kernel (real bytes through
  ``ErasureCodec.encode``/``decode``), headlined by RS-Vandermonde
  (4, 2) at 1 MiB values — the paper's online-coding sweet spot;
- **simulated events/sec** of the bare discrete-event engine (a pure
  timeout workload, the dominant event shape in every experiment);
- **end-to-end ops/sec** of the Figure 8 microbench harness (clients,
  ARPE, fabric, servers — everything but real payload bytes);
- **1,000-server scale** (``scale1k``): cluster build seconds, placement
  lookups/sec over a ~1M-key space, and a quick elasticity soak at that
  size, with peak RSS attached as context.

Every metric is *higher is better*, so trajectory comparison is a single
ratio.  ``run_suite`` returns a report dict; ``compare`` computes
speedups against a previous report; ``write_report`` serializes to JSON
(the repo commits ``BENCH_perf.json`` so future PRs have a trajectory).
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time
from typing import Callable, Dict, Optional

try:
    import numpy as np
except ImportError:  # pure-Python fallback tree: bench still runs
    np = None

KIB = 1024
MIB = 1024 * 1024

#: codec geometries measured by the kernel benches.  The first entry is
#: the acceptance headline: rs_van k=4, m=2 at 1 MiB values.
CODEC_GEOMETRIES = (
    ("rs_van", 4, 2),
    ("rs_van", 3, 2),
    ("crs", 3, 2),
    ("r6_lib", 3, 2),
    ("lrc", 4, 3),
    ("lt", 4, 2),
)


def _test_bytes(size: int, seed: int = 7) -> bytes:
    if np is not None:
        rng = np.random.RandomState(seed)
        return rng.randint(0, 256, size, dtype=np.uint8).tobytes()
    rng = random.Random(seed)
    return rng.getrandbits(8 * size).to_bytes(size, "little")


def _measure(fn: Callable[[], object], min_time: float) -> float:
    """Seconds per call of ``fn``, calibrated to run >= ``min_time``."""
    fn()  # warm up (tables, decode-matrix caches, JIT-ish numpy paths)
    t0 = time.perf_counter()
    fn()
    single = max(time.perf_counter() - t0, 1e-9)
    reps = max(1, int(min_time / single) + 1)
    t0 = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - t0) / reps


# ---------------------------------------------------------------------------
# Codec kernels
# ---------------------------------------------------------------------------


def bench_codecs(quick: bool = False) -> Dict[str, float]:
    """Encode and decode throughput (MB/s of user data) per codec."""
    try:
        from repro.ec.registry import make_codec
    except ImportError:  # codec kernels need numpy; skip without it
        return {}

    min_time = 0.1 if quick else 0.4
    size = MIB
    data = _test_bytes(size)
    metrics: Dict[str, float] = {}
    for name, k, m in CODEC_GEOMETRIES:
        codec = make_codec(name, k, m)
        label = "%s_k%d_m%d_1mib" % (name, k, m)
        per_call = _measure(lambda: codec.encode(data), min_time)
        metrics["encode_mbps/%s" % label] = size / per_call / 1e6

        # Decode with the worst tolerated erasure pattern: the first
        # ``tolerated`` chunks (all data chunks where possible), forcing
        # real reconstruction math rather than the systematic fast path.
        chunk_set = codec.encode(data)
        erased = min(codec.tolerated_failures, codec.m)
        available = list(range(erased, codec.n))
        plan = codec.decode_indices(available) or available[: codec.k]
        subset = chunk_set.subset(plan)
        per_call = _measure(lambda: codec.decode(subset, size), min_time)
        metrics["decode_mbps/%s" % label] = size / per_call / 1e6
    return metrics


# ---------------------------------------------------------------------------
# Simulation engine
# ---------------------------------------------------------------------------


def bench_engine(quick: bool = False) -> Dict[str, float]:
    """Raw event-loop throughput: processes yielding timeouts."""
    from repro.simulation import Simulator

    num_procs = 50
    events_per_proc = 400 if quick else 2000

    def ticker(sim, n):
        for i in range(n):
            yield sim.timeout(1e-6 * (1 + (i & 7)))

    def run() -> int:
        sim = Simulator()
        for _ in range(num_procs):
            sim.process(ticker(sim, events_per_proc))
        sim.run()
        return sim.processed_events

    run()  # warm up
    t0 = time.perf_counter()
    events = run()
    elapsed = time.perf_counter() - t0
    return {"engine_events_per_sec": events / elapsed}


# ---------------------------------------------------------------------------
# End-to-end harness (Figure 8 microbench)
# ---------------------------------------------------------------------------


def bench_fig8(quick: bool = False) -> Dict[str, float]:
    """Wall-clock ops/sec of the Figure 8 microbench harness run."""
    from repro.harness.experiments import fig8_microbench

    num_ops = 100 if quick else 300
    sizes = (4 * KIB, 64 * KIB)
    schemes = ("async-rep", "era-ce-cd", "era-se-cd")
    t0 = time.perf_counter()
    fig8_microbench(sizes=sizes, schemes=schemes, num_ops=num_ops)
    elapsed = time.perf_counter() - t0
    # per (scheme, size): one Set run (num_ops) plus a Get run with its
    # load prologue (2 * num_ops).
    total_ops = 3 * num_ops * len(sizes) * len(schemes)
    return {
        "fig8_ops_per_sec": total_ops / elapsed,
        "fig8_wall_seconds_info": elapsed,
    }


def bench_batch_ops(quick: bool = False) -> Dict[str, float]:
    """Batched multi_get/multi_set throughput (absent on older trees)."""
    from repro.core.cluster import build_cluster

    cluster = build_cluster(
        profile="ri-qdr", scheme="era-ce-cd", servers=5,
        memory_per_server=4 * 1024 * MIB,
    )
    client = cluster.add_client()
    if not hasattr(client, "multi_get"):
        return {}
    num_keys = 400 if quick else 1500
    batch = 50
    keys = ["bk-%d" % i for i in range(num_keys)]

    def run_batches() -> None:
        def body():
            for start in range(0, num_keys, batch):
                chunk = keys[start : start + batch]
                handle = client.multi_set(
                    [(key, _sized_payload(4 * KIB)) for key in chunk]
                )
                yield handle.done
            for start in range(0, num_keys, batch):
                handle = client.multi_get(keys[start : start + batch])
                yield handle.done

        done = cluster.sim.process(body())
        cluster.sim.run(done)

    t0 = time.perf_counter()
    run_batches()
    elapsed = time.perf_counter() - t0
    return {"batch_ops_per_sec": 2 * num_keys / elapsed}


def _sized_payload(size: int):
    from repro.common.payload import Payload

    return Payload.sized(size)


# ---------------------------------------------------------------------------
# Stripe packing (small-object subsystem)
# ---------------------------------------------------------------------------


def bench_stripes(quick: bool = False) -> Dict[str, float]:
    """Wall-clock throughput of the stripe-packing comparison phase.

    Runs the stripes soak's deterministic ETC-shaped write+read pass on
    the stripe scheme and reports completed ops per wall second, with
    the measured storage amplification attached as context (absent on
    trees predating ``repro.stripes``).
    """
    try:
        from repro.harness.stripes import StripesSoakConfig, _measure_scheme
    except ImportError:
        return {}

    config = StripesSoakConfig(seed=0, objects=300 if quick else 800)
    t0 = time.perf_counter()
    row = _measure_scheme(config, "stripes")
    elapsed = time.perf_counter() - t0
    ops = row["set_acks"] + row["get_ok"]
    return {
        "stripe_goodput_ops_per_sec": ops / elapsed,
        "stripe_overhead_ratio_info": row["memory_overhead_ratio"],
        "stripe_wall_seconds_info": elapsed,
    }


# ---------------------------------------------------------------------------
# Elastic rebalancing (membership subsystem)
# ---------------------------------------------------------------------------


def bench_scale(quick: bool = False) -> Dict[str, float]:
    """Wall-clock cost of a scale-out + decommission migration.

    Runs the elasticity experiment without chaos noise and reports
    chunk-moves per wall second, with the rebuild byte volume attached
    as context (absent on trees predating ``repro.membership``).
    """
    try:
        from repro.harness.scale import ScaleConfig, run_scale
    except ImportError:
        return {}

    config = ScaleConfig(
        seed=0,
        fault_profile="none",
        key_space=24 if quick else 64,
        baseline=0.1,
        cooldown=0.05,
    )
    t0 = time.perf_counter()
    report = run_scale(config)
    elapsed = time.perf_counter() - t0
    moves = sum(t["plan"]["moves"] for t in report["transitions"])
    return {
        "scale_moves_per_sec": moves / elapsed,
        "scale_moves_info": float(moves),
        "scale_rebuild_bytes_info": float(report["throttle"]["total_bytes"]),
        "scale_reencode_moves_info": float(
            report["rebuild_metrics"].get("rebuild.reencode_moves", 0)
        ),
        "scale_wall_seconds_info": elapsed,
        "scale_invariants_ok_info": 1.0 if report["ok"] else 0.0,
    }


# ---------------------------------------------------------------------------
# Order-of-magnitude scale (1,000 servers)
# ---------------------------------------------------------------------------


def bench_scale1k(quick: bool = False) -> Dict[str, float]:
    """A 1,000-server cluster as a bench dimension.

    Three measurements (absent on trees predating ``repro.membership``):
    wall seconds to build the cluster, placement lookups per second over
    a 1M-key space against the 100k-point ring, and a quick elasticity
    soak (join + decommission under load) at that size, with peak RSS
    attached as context.  Deliberately identical in quick and full mode
    (a few seconds either way), so CI's quick gate compares like with
    like against the committed full-mode baseline.
    """
    del quick
    try:
        from repro.core.cluster import build_cluster
        from repro.harness.scale import ScaleConfig, peak_rss_mib, run_scale
    except ImportError:
        return {}

    num_servers = 1000
    num_keys = 1_000_000

    t0 = time.perf_counter()
    cluster = build_cluster(
        profile="ri-qdr", scheme="era-ce-cd", servers=num_servers
    )
    build_seconds = time.perf_counter() - t0

    ring = cluster.ring
    keys = ["scale1k:%d" % i for i in range(num_keys)]
    t0 = time.perf_counter()
    warm = getattr(ring, "warm", None)
    if warm is not None:
        warm(keys)
    primary = ring.primary
    for key in keys:
        primary(key)
    keys_elapsed = time.perf_counter() - t0
    del keys, cluster

    config = ScaleConfig(
        seed=0,
        servers=num_servers,
        key_space=24,
        baseline=0.25,
        cooldown=0.1,
    )
    t0 = time.perf_counter()
    report = run_scale(config)
    soak_elapsed = time.perf_counter() - t0
    ops = report["ops"]

    metrics = {
        "scale1k_keys_per_sec": num_keys / keys_elapsed,
        "scale1k_ops_per_sec": (
            (ops["set_attempts"] + ops["get_attempts"]) / soak_elapsed
        ),
        "scale1k_build_seconds_info": build_seconds,
        "scale1k_soak_wall_seconds_info": soak_elapsed,
        "scale1k_soak_ok_info": 1.0 if report["ok"] else 0.0,
    }
    rss = peak_rss_mib()
    if rss is not None:
        metrics["scale1k_peak_rss_mib_info"] = rss
    return metrics


# ---------------------------------------------------------------------------
# Suite driver
# ---------------------------------------------------------------------------


def run_suite(quick: bool = False) -> Dict[str, object]:
    """Run every bench; returns ``{"meta": ..., "metrics": ...}``."""
    metrics: Dict[str, float] = {}
    metrics.update(bench_codecs(quick))
    metrics.update(bench_engine(quick))
    metrics.update(bench_fig8(quick))
    metrics.update(bench_batch_ops(quick))
    metrics.update(bench_stripes(quick))
    metrics.update(bench_scale(quick))
    metrics.update(bench_scale1k(quick))
    return {
        "meta": {
            "mode": "quick" if quick else "full",
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "metrics": metrics,
    }


def compare(before: Dict[str, object], after: Dict[str, object]) -> Dict[str, float]:
    """Speedup ratios (after / before) for metrics present in both runs.

    Keys ending in ``_info`` are context (e.g. raw wall seconds), not
    higher-is-better throughputs, and are skipped.
    """
    b = before.get("metrics", {})
    a = after.get("metrics", {})
    return {
        key: a[key] / b[key]
        for key in sorted(set(a) & set(b))
        if not key.endswith("_info") and b[key]
    }


def write_report(
    path: str,
    report: Dict[str, object],
    baseline: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Serialize the report (plus optional before/speedup block) to JSON."""
    if baseline is not None:
        payload = {
            "before": baseline,
            "after": report,
            "speedup": compare(baseline, report),
        }
    else:
        payload = report
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def load_report(path: str) -> Dict[str, object]:
    """Read a previously written report (either bare or before/after)."""
    with open(path) as fh:
        report = json.load(fh)
    # A combined before/after file's "after" block is the comparison base.
    return report.get("after", report)


def format_report(payload: Dict[str, object]) -> str:
    """Human-readable table of metrics (and speedups when present)."""
    lines = []
    if "speedup" in payload:
        after = payload["after"]["metrics"]
        before = payload["before"]["metrics"]
        speedup = payload["speedup"]
        lines.append("%-40s %12s %12s %8s" % ("metric", "before", "after", "x"))
        for key in sorted(after):
            if key.endswith("_info"):
                continue
            prev = before.get(key)
            lines.append(
                "%-40s %12s %12.1f %8s"
                % (
                    key,
                    "%.1f" % prev if prev is not None else "-",
                    after[key],
                    "%.2fx" % speedup[key] if key in speedup else "-",
                )
            )
    else:
        metrics = payload["metrics"]
        lines.append("%-40s %12s" % ("metric", "value"))
        for key in sorted(metrics):
            if key.endswith("_info"):
                continue
            lines.append("%-40s %12.1f" % (key, metrics[key]))
    return "\n".join(lines)
