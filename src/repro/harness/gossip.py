"""The gossip membership soak: SWIM failure detection under churn.

One seeded run drives a thousand-node cluster through the failure
classes a decentralized detector must survive, with every gate measured
on the virtual clock:

**Clean room** — no faults at all for a stretch of protocol periods.
Gate: zero suspicions, zero DEAD declarations (no false positives), and
the per-node message load is O(1) per protocol period — measured, and
compared against a small control cluster run with the same knobs (the
load ratio must stay near 1.0 regardless of N; this is SWIM's headline
property over all-to-all heartbeating).

**Crash detection** — a handful of servers fail-stop, staggered.  Gate:
every crash's time-to-detect — the table's ALIVE->SUSPECT transition,
SWIM's own detection metric with expected value e/(e-1) protocol
periods — has a median within ``max_ttd_periods`` periods, and every
victim is *confirmed* DEAD (suspicion window expiry) inside the phase
budget.  The victims then restart; their incarnation-number refutations
must win and the membership table must converge back to all-ALIVE.

**Asymmetric partition** — one victim loses a random half of its
*inbound* links (peers' probes never arrive; its own traffic flows).
Node-level partition sets cannot express this; it is exactly what
indirect probes exist to survive.  Gate: indirect probing engaged and
rescued the victim at least once, and the victim is ALIVE in the table
once the links heal.  A DEAD verdict can still slip through when a
prober happens to sample only cut peers as proxies (probability
``(fanout)^k`` per failed probe — SWIM's residual false-positive rate);
such verdicts are reported and must be refuted, not prevented.

**Flap storm** — a server cycles down/up with downtimes shorter than
the suspicion window.  At thousand-node scale a refutation needs
O(log n) periods to reach every suspicion timer, so a transient DEAD
verdict can race it (the reason memberlist scales its suspicion window
with log n); the soak therefore reports transient verdicts and gates on
*convergence*: incarnation-bumped refutations must win — the flapper
ends ALIVE in the table and no view retains it as dead.  The strict
zero-DEAD flap property is asserted at small N in the unit tests, where
the rumor round trip fits inside the window deterministically.

**Join + epoch spread** — a fresh server joins through the normal
migration flow and the sealed epoch must reach every live node's local
view through piggybacked gossip alone.  Gate: unanimous epoch agreement
and unanimous (empty) dead-set agreement across all views.

Determinism: the whole run derives from one seed (per-node SWIM rngs are
seeded from it by name); the report's SHA-256 digest covers the
detection log, per-phase message counts, TTDs and the final views —
identical seeds must produce identical digests.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.harness.scale import peak_rss_mib


@dataclass
class GossipConfig:
    """One gossip soak's shape.  Times derive from the protocol period."""

    seed: int = 0
    net_profile: str = "ri-qdr"
    scheme: str = "era-ce-cd"
    servers: int = 1000
    k: int = 3
    m: int = 2

    # -- SWIM knobs --------------------------------------------------------
    period: float = 0.05
    #: suspicion window in protocol periods; 1.5 keeps median TTD well
    #: inside the 3-period gate while the clean room stays false-free
    suspicion_periods: float = 1.5
    indirect_probes: int = 3
    sync_every: int = 10
    piggyback_limit: int = 8

    # -- phase lengths (protocol periods) ----------------------------------
    clean_periods: int = 20
    #: staggered fail-stop victims
    crashes: int = 5
    #: wait budget for every crash to land in the detection log
    detect_periods: float = 12.0
    #: settle time after the victims restart (refutations must spread)
    settle_periods: float = 15.0
    partition_periods: float = 10.0
    #: fraction of the partition victim's inbound links cut
    partition_fanout: float = 0.5
    #: down/up cycles of the flapping node
    flaps: int = 3
    #: downtime per flap, in periods — must stay under the suspicion window
    flap_down_periods: float = 1.0
    flap_up_periods: float = 3.0
    #: servers joined in the final phase (0 skips the phase)
    join: int = 1
    epoch_periods: float = 20.0

    # -- gates -------------------------------------------------------------
    max_ttd_periods: float = 3.0
    #: small-N control cluster for the O(1) load comparison (0 skips it)
    control_servers: int = 125
    #: big-N load may exceed control-N load by at most this factor
    load_ratio_bound: float = 1.35
    #: absolute ceiling, messages per node per protocol period
    load_absolute_bound: float = 3.0


def _measure_clean_load(config: GossipConfig, servers: int) -> float:
    """Messages per node per protocol period on an idle cluster."""
    from repro.core.cluster import build_cluster

    cluster = build_cluster(
        profile=config.net_profile,
        scheme=config.scheme,
        servers=servers,
        k=config.k,
        m=config.m,
    )
    cluster.config.with_membership(
        detector="swim",
        period=config.period,
        suspicion_periods=config.suspicion_periods,
        indirect_probes=config.indirect_probes,
        sync_every=config.sync_every,
        piggyback_limit=config.piggyback_limit,
        seed=config.seed,
    )
    detector = cluster.detector
    span = config.clean_periods * config.period
    detector.start(horizon=span)
    cluster.run(cluster.sim.timeout(span))
    detector.stop()
    cluster.run()
    return detector.messages_sent() / float(servers * config.clean_periods)


def run_gossip(config: GossipConfig) -> dict:
    """Execute one seeded gossip soak; returns the JSON-able report."""
    from repro.core.cluster import build_cluster
    from repro.faults.engine import ChaosEngine
    from repro.faults.profiles import PROFILES

    period = config.period
    build_t0 = time.perf_counter()
    cluster = build_cluster(
        profile=config.net_profile,
        scheme=config.scheme,
        servers=config.servers,
        k=config.k,
        m=config.m,
    )
    build_seconds = time.perf_counter() - build_t0
    sim = cluster.sim
    table = cluster.membership

    cluster.config.with_membership(
        detector="swim",
        period=period,
        suspicion_periods=config.suspicion_periods,
        indirect_probes=config.indirect_probes,
        sync_every=config.sync_every,
        piggyback_limit=config.piggyback_limit,
        seed=config.seed,
    )
    detector = cluster.detector
    # Manual link cuts only — the "none" profile schedules nothing.
    chaos = ChaosEngine(cluster, PROFILES["none"], seed=config.seed)

    rng = random.Random(config.seed)
    phases: Dict[str, dict] = {}
    failures: List[str] = []

    def _counter(name: str) -> int:
        return cluster.metrics.snapshot().get(name, 0)

    def _phase_gate(name: str, ok: bool, detail: str) -> None:
        if not ok:
            failures.append("%s: %s" % (name, detail))

    # Generous horizon: the driver ends the run, not the detector.
    total_periods = (
        config.clean_periods
        + config.crashes  # stagger
        + config.detect_periods
        + config.settle_periods
        + config.partition_periods
        + config.flaps * (config.flap_down_periods + config.flap_up_periods)
        + config.epoch_periods
        + 20.0
    )
    detector.start(horizon=total_periods * period)

    marks = {"events": []}  # [(virtual time, label)]

    def _mark(label: str) -> None:
        marks["events"].append([sim.now, label])

    def _driver():
        # ---- phase A: clean room ----------------------------------------
        _mark("clean_start")
        msgs0 = detector.messages_sent()
        yield sim.timeout(config.clean_periods * period)
        msgs1 = detector.messages_sent()
        load = (msgs1 - msgs0) / float(config.servers * config.clean_periods)
        false_dead = len(detector.detection_log)
        false_suspects = _counter("membership.detector_suspects")
        phases["clean"] = {
            "periods": config.clean_periods,
            "msgs_per_node_per_period": round(load, 4),
            "false_dead": false_dead,
            "false_suspects": false_suspects,
        }
        _phase_gate(
            "clean",
            false_dead == 0 and false_suspects == 0,
            "false positives in a fault-free window (%d dead, %d suspect)"
            % (false_dead, false_suspects),
        )
        _mark("clean_end")

        # ---- phase B: staggered crashes, detect, recover ----------------
        victims = rng.sample(sorted(cluster.servers), config.crashes)
        fail_times: Dict[str, float] = {}
        for victim in victims:
            cluster.servers[victim].fail()
            fail_times[victim] = sim.now
            _mark("crash:%s" % victim)
            yield sim.timeout(period)
        deadline = sim.now + config.detect_periods * period
        while sim.now < deadline:
            confirmed = {member for _, member, _ in detector.detection_log}
            if all(v in confirmed for v in victims):
                break
            yield sim.timeout(period / 2.0)
        confirmed = {member for _, member, _ in detector.detection_log}

        def _first_suspicion(victim):
            for t, member, _ in detector.suspicion_log:
                if member == victim and t >= fail_times[victim]:
                    return t
            return None

        suspected_at = {
            v: t for v in victims for t in [_first_suspicion(v)] if t is not None
        }
        ttds = sorted(
            (suspected_at[v] - fail_times[v]) / period for v in suspected_at
        )
        confirm_lags = sorted(
            (t - fail_times[m]) / period
            for t, m, _ in detector.detection_log
            if m in fail_times
        )
        median_ttd = ttds[len(ttds) // 2] if ttds else None
        phases["crash"] = {
            "victims": victims,
            "suspected": len(ttds),
            "confirmed_dead": len(confirmed & set(victims)),
            "ttd_periods": [round(t, 3) for t in ttds],
            "median_ttd_periods": (
                round(median_ttd, 3) if median_ttd is not None else None
            ),
            "confirm_periods": [round(t, 3) for t in confirm_lags],
        }
        _phase_gate(
            "crash",
            len(ttds) == len(victims),
            "only %d/%d crashes suspected" % (len(ttds), len(victims)),
        )
        _phase_gate(
            "crash",
            confirmed >= set(victims),
            "only %d/%d crashes confirmed DEAD in %.0f periods"
            % (
                len(confirmed & set(victims)),
                len(victims),
                config.detect_periods,
            ),
        )
        _phase_gate(
            "crash",
            median_ttd is not None and median_ttd <= config.max_ttd_periods,
            "median TTD %s periods exceeds %.1f"
            % (median_ttd, config.max_ttd_periods),
        )
        for victim in victims:
            cluster.servers[victim].recover()
            _mark("recover:%s" % victim)
        yield sim.timeout(config.settle_periods * period)
        still_down = sorted(
            name
            for name in cluster.servers
            if table.state_of(name) != "alive"
        )
        phases["recover"] = {"not_realive": still_down}
        _phase_gate(
            "recover",
            not still_down,
            "refutations did not re-alive %s" % still_down,
        )
        _mark("recover_settled")

        # ---- phase C: asymmetric partial partition ----------------------
        deaths_before = len(detector.detection_log)
        indirect_before = _counter("membership.swim_indirect")
        rescues_before = _counter("membership.swim_rescues")
        target = rng.choice(sorted(cluster.servers))
        peers = sorted(n for n in cluster.servers if n != target)
        cut = rng.sample(peers, max(1, int(len(peers) * config.partition_fanout)))
        for peer in cut:
            chaos.partition_link(peer, target)  # inbound: probes never arrive
        _mark("partition:%s" % target)
        yield sim.timeout(config.partition_periods * period)
        for peer in cut:
            chaos.heal_link(peer, target)
        _mark("partition_healed")
        # Let straggler suspicions refute before judging the outcome.
        yield sim.timeout(5 * period)
        new_entries = detector.detection_log[deaths_before:]
        victim_deaths = sum(1 for _, m, _ in new_entries if m == target)
        indirect_used = _counter("membership.swim_indirect") - indirect_before
        rescues = _counter("membership.swim_rescues") - rescues_before
        phases["partition"] = {
            "victim": target,
            "links_cut": len(cut),
            "victim_alive": table.state_of(target) == "alive",
            "victim_dead_verdicts": victim_deaths,
            # late suspicion-timer expiries from earlier phases can land
            # in this window; reported, but only the victim is gated
            "unrelated_dead_verdicts": len(new_entries) - victim_deaths,
            "indirect_probes": indirect_used,
            "indirect_rescues": rescues,
        }
        _phase_gate(
            "partition",
            table.state_of(target) == "alive",
            "victim stuck %s after heal" % table.state_of(target),
        )
        _phase_gate(
            "partition",
            indirect_used > 0 and rescues > 0,
            "indirect probing never rescued the victim "
            "(%d attempts, %d rescues)" % (indirect_used, rescues),
        )

        # ---- phase D: flap storm ----------------------------------------
        deaths_before = len(detector.detection_log)
        flapper = rng.choice(sorted(cluster.servers))
        for _ in range(config.flaps):
            cluster.servers[flapper].fail()
            yield sim.timeout(config.flap_down_periods * period)
            cluster.servers[flapper].recover()
            yield sim.timeout(config.flap_up_periods * period)
        yield sim.timeout(config.settle_periods * period)
        flap_deaths = len(detector.detection_log) - deaths_before
        not_alive = sorted(
            name
            for name in cluster.servers
            if table.state_of(name) != "alive"
        )
        phases["flap"] = {
            "flapper": flapper,
            "cycles": config.flaps,
            "transient_dead_verdicts": flap_deaths,
            "refutes": _counter("membership.swim_refutes"),
            "flapper_alive": table.state_of(flapper) == "alive",
        }
        _phase_gate(
            "flap",
            not not_alive,
            "flap residue: %s not re-alived" % not_alive,
        )
        _mark("flap_settled")

        # ---- phase E: join + epoch spread -------------------------------
        if config.join > 0:
            joiners = ["joiner-%d" % i for i in range(config.join)]
            yield from cluster.scale_out(joiners)
            _mark("joined:%s" % ",".join(joiners))
            yield sim.timeout(config.epoch_periods * period)
            views = detector.view_epochs()
            sealed = table.current.number
            lagging = sorted(
                name for name, epoch in views.items() if epoch != sealed
            )
            dead_sets = set(detector.view_dead_sets().values())
            phases["join"] = {
                "joiners": joiners,
                "sealed_epoch": sealed,
                "views": len(views),
                "lagging_views": lagging,
                "dead_set_agreement": sorted(
                    [list(s) for s in dead_sets]
                ),
            }
            _phase_gate(
                "join",
                not lagging,
                "%d/%d views missed epoch %d"
                % (len(lagging), len(views), sealed),
            )
            _phase_gate(
                "join",
                dead_sets == {()},
                "conflicting dead sets %r" % sorted(dead_sets),
            )
            _mark("epoch_spread")

    run_t0 = time.perf_counter()
    sim.process(_driver(), name="gossip-driver")
    cluster.run()
    detector.stop()
    cluster.run()
    run_seconds = time.perf_counter() - run_t0

    # -- small-N control: the O(1)-load comparison -------------------------
    load_big = phases["clean"]["msgs_per_node_per_period"]
    load_control = None
    load_ratio = None
    if config.control_servers > 0:
        load_control = round(
            _measure_clean_load(config, config.control_servers), 4
        )
        load_ratio = (
            round(load_big / load_control, 4) if load_control else None
        )
        _phase_gate(
            "load",
            load_ratio is not None and load_ratio <= config.load_ratio_bound,
            "per-node load grew %sx from %d to %d servers (bound %.2fx)"
            % (
                load_ratio,
                config.control_servers,
                config.servers,
                config.load_ratio_bound,
            ),
        )
    _phase_gate(
        "load",
        load_big <= config.load_absolute_bound,
        "%.2f msgs/node/period exceeds %.1f"
        % (load_big, config.load_absolute_bound),
    )

    snapshot = cluster.metrics.snapshot()
    membership_metrics = {
        name: value
        for name, value in sorted(snapshot.items())
        if name.startswith("membership.")
    }

    digest_input = {
        "config": {
            "seed": config.seed,
            "scheme": config.scheme,
            "servers": config.servers,
            "period": config.period,
            "suspicion_periods": config.suspicion_periods,
            "indirect_probes": config.indirect_probes,
            "sync_every": config.sync_every,
            "crashes": config.crashes,
            "flaps": config.flaps,
            "join": config.join,
        },
        "phases": phases,
        "detection_log": [
            [t, member, by] for t, member, by in detector.detection_log
        ],
        "suspicion_log": [
            [t, member, by] for t, member, by in detector.suspicion_log
        ],
        "marks": marks["events"],
        "membership_metrics": membership_metrics,
        "messages_sent": detector.messages_sent(),
        "failures": failures,
    }
    digest = hashlib.sha256(
        json.dumps(digest_input, sort_keys=True).encode()
    ).hexdigest()

    return {
        "config": digest_input["config"],
        "ok": not failures,
        "failures": failures,
        "phases": phases,
        "load": {
            "msgs_per_node_per_period": load_big,
            "control_servers": config.control_servers or None,
            "control_msgs_per_node_per_period": load_control,
            "ratio": load_ratio,
            "ratio_bound": config.load_ratio_bound,
            "absolute_bound": config.load_absolute_bound,
        },
        "detection_log_entries": len(detector.detection_log),
        "messages_sent": digest_input["messages_sent"],
        "membership_metrics": membership_metrics,
        "virtual_time": sim.now,
        # Wall-clock resource footprint — deliberately outside the digest
        # (it varies run to run; the digest must not).
        "resources": {
            "cluster_build_seconds": round(build_seconds, 6),
            "soak_wall_seconds": round(run_seconds, 6),
            "peak_rss_mib": peak_rss_mib(),
        },
        "digest": digest,
    }


def run_gossip_suite(
    seeds: List[int], config: Optional[GossipConfig] = None
) -> dict:
    """Run the gossip soak across seeds; aggregate verdict + reports."""
    import dataclasses

    base = config or GossipConfig()
    reports = []
    for seed in seeds:
        reports.append(run_gossip(dataclasses.replace(base, seed=seed)))
    return {
        "ok": all(r["ok"] for r in reports),
        "seeds": list(seeds),
        "reports": reports,
    }
