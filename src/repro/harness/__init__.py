"""Experiment harness: one runner per paper figure.

Each ``fig*`` function reproduces the corresponding figure's data series
and returns a list of result rows (plain dataclasses) that the benchmark
suite prints in the same layout the paper reports.  All runners accept a
``scale`` knob: ``1.0`` is the paper's full experiment; smaller values
shrink operation counts / client counts proportionally so the whole suite
runs in CI time without changing who wins or where crossovers fall.
"""

from repro.harness.experiments import (
    EXPERIMENTS,
    fig4_jerasure,
    fig11_12_ycsb,
    fig8_microbench,
    fig9_breakdown,
    fig10_memory,
    fig11_ycsb_latency,
    fig12_ycsb_throughput,
    fig13_boldio,
)
from repro.harness.reporting import format_table

__all__ = [
    "EXPERIMENTS",
    "fig10_memory",
    "fig11_12_ycsb",
    "fig11_ycsb_latency",
    "fig12_ycsb_throughput",
    "fig13_boldio",
    "fig4_jerasure",
    "fig8_microbench",
    "fig9_breakdown",
    "format_table",
]
