"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Any, List, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.2f" % value
        return "%.4g" % value
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned plain-text table (paper-style results listing)."""
    cells: List[List[str]] = [[_fmt(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [
        max(len(line[col]) for line in cells) for col in range(len(headers))
    ]
    out_lines = []
    for line_index, line in enumerate(cells):
        out_lines.append(
            "  ".join(text.rjust(width) for text, width in zip(line, widths))
        )
        if line_index == 0:
            out_lines.append("  ".join("-" * width for width in widths))
    return "\n".join(out_lines)


def microseconds(seconds: float) -> float:
    """Seconds -> microseconds."""
    return seconds * 1e6


def mib_per_second(bytes_per_second: float) -> float:
    """Bytes/s -> MiB/s."""
    return bytes_per_second / (1024 * 1024)
