"""The scrub soak: bit rot vs. the background scrubber, with gates.

The claim under test: with continuous integrity scrubbing on, **silent
corruption is detected within a bounded number of scan periods, healed
without data loss, certified honestly by the sampling audits — and the
foreground workload barely notices**.  Four gates make that concrete:

1. *Bounded detection* — every bit-rot event the chaos engine logs in
   its ground-truth ``rot_log`` must be purged (detected-and-dropped,
   healed, or overwritten) within ``ttd_bound_periods * scan_period``
   of injection.  A monitor process watches the actual server caches,
   so detection via *any* path (scrub read, foreground read, overwrite)
   counts — but rot that nobody ever notices fails the gate.
2. *No data loss* — the chaos-soak model check: every acknowledged Set
   must read back its exact bytes in a post-run clean-room sweep, and
   no CRC-mismatched item may remain in any cache.
3. *Honest certificates* — whenever a sampling audit certifies "all
   acked data recoverable", a synchronous ground-truth scan (chunk
   presence + CRC per acked key) must agree; a certificate issued while
   some acked key has more than ``m`` bad chunks is a contradiction.
4. *Foreground isolation* — the workload's Get p99 with scrubbing
   active must stay within ``p99_ratio_limit`` (default 1.5x) of a
   paired baseline run: same seed, same workload streams, same rot —
   only ``with_scrubbing`` removed.

Determinism: one master seed fans out (in fixed order) to the chaos
engine, the scrubber and each workload client, for both the scrub run
and its baseline; the report digest covers config, op counts, the rot
log, scrub counters and violations.
"""

from __future__ import annotations

import hashlib
import json
import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.payload import Payload
from repro.faults.engine import ChaosEngine
from repro.faults.profiles import profile_by_name
from repro.faults.soak import _ClientModel, _latency_summary, _value_bytes
from repro.resilience.erasure import chunk_key
from repro.store.client import KVStoreError
from repro.store.policy import HARDENED_POLICY


@dataclass
class ScrubSoakConfig:
    """One scrub-soak run's shape.  Times are virtual seconds."""

    seed: int = 0
    duration: float = 2.0
    net_profile: str = "ri-qdr"
    scheme: str = "era-ce-cd"
    servers: int = 6
    k: int = 3
    m: int = 2
    fault_profile: str = "rot"
    num_clients: int = 2
    key_space: int = 64
    value_size: int = 8 * 1024
    set_fraction: float = 0.4
    #: mean think time between a client's operations — deliberately lazy
    #: (vs. the chaos soak's 2 ms) so most keys go cold between touches:
    #: the scrubber, not foreground read luck, must find the rot
    op_gap: float = 8e-3
    # -- scrubbing ------------------------------------------------------
    scan_period: float = 0.25
    audit_period: float = 0.5
    epsilon: float = 1e-2
    p_bound: float = 0.1
    #: keep scrubbing this many scan periods past the rot horizon so
    #: end-of-run rot still gets a full pass to be found
    drain_periods: float = 3.0
    # -- gates ----------------------------------------------------------
    #: every rot event must be purged within this many scan periods
    ttd_bound_periods: float = 3.0
    #: foreground Get p99 with scrubbing <= limit * no-scrub baseline
    p99_ratio_limit: float = 1.5
    #: also run the no-scrub baseline for the p99 gate (the baseline
    #: deliberately skips the durability gates: without a scrubber, rot
    #: is *expected* to linger)
    baseline: bool = True


def _run_phase(config: ScrubSoakConfig, scrubbing: bool) -> dict:
    """One seeded run: workload + rot chaos, scrubber on or off."""
    from repro.core.cluster import build_cluster

    cluster = build_cluster(
        profile=config.net_profile,
        scheme=config.scheme,
        servers=config.servers,
        k=config.k,
        m=config.m,
    )
    cluster.config.harden(HARDENED_POLICY).with_admission_control()
    for server in cluster.servers.values():
        server.peer_timeout = HARDENED_POLICY.request_timeout
    sim = cluster.sim
    scheme = cluster.scheme
    tolerated = scheme.tolerated_failures

    # Fixed fan-out order keeps the chaos and workload streams identical
    # between the scrub run and its baseline — `scrubbing` only decides
    # whether the scrub seed is *used*, never whether it is drawn.
    master = random.Random(config.seed)
    chaos_seed = master.getrandbits(64)
    scrub_seed = master.getrandbits(32)
    client_seeds = [
        master.getrandbits(64) for _ in range(config.num_clients)
    ]

    drain = config.drain_periods * config.scan_period
    horizon = config.duration + drain
    scrubber = None
    if scrubbing:
        cluster.config.with_scrubbing(
            scan_period=config.scan_period,
            audit_period=config.audit_period,
            epsilon=config.epsilon,
            p_bound=config.p_bound,
            seed=scrub_seed,
        )
        scrubber = cluster.scrubber
        scrubber.start(horizon)

    chaos = ChaosEngine(
        cluster,
        profile_by_name(config.fault_profile),
        seed=chaos_seed,
        max_degraded=tolerated,
    )
    chaos.start(config.duration)

    violations: Dict[str, list] = {
        "lost_writes": [],
        "wrong_bytes": [],
        "undetected_rot": [],
        "slow_detection": [],
        "audit_contradictions": [],
        "residual_corruption": [],
    }

    models: List[_ClientModel] = []
    clients = []
    rngs = []
    for seed in client_seeds:
        client = cluster.add_client(name_hint="soak")
        clients.append(client)
        model = _ClientModel(client.name)
        model.inflight = set()
        models.append(model)
        rngs.append(random.Random(seed))

    # -- ground-truth helpers ---------------------------------------------
    def _item_corrupt(holder: str, skey: str) -> bool:
        """Whether ``holder`` currently stores rotten bytes under ``skey``."""
        server = cluster.servers.get(holder)
        if server is None:
            return False
        item = server.cache.peek(skey)
        if item is None or item.data is None:
            return False
        expected = item.meta.get("crc")
        return expected is not None and zlib.crc32(item.data) != expected

    def _bad_chunks(key: str) -> int:
        """Chunks of ``key`` that are absent or CRC-mismatched right now."""
        bad = 0
        for index, holder in enumerate(scheme.chunk_servers(cluster.ring, key)):
            server = cluster.servers.get(holder)
            item = (
                server.cache.peek(chunk_key(key, index))
                if server is not None and server.alive
                else None
            )
            if item is None:
                bad += 1
            elif item.data is not None:
                expected = item.meta.get("crc")
                if expected is not None and zlib.crc32(item.data) != expected:
                    bad += 1
        return bad

    # -- gate 1: bounded detection (ground truth, any detection path) -----
    ttd_bound = config.ttd_bound_periods * config.scan_period
    ttd_truth: List[float] = []
    monitor_tick = config.scan_period / 4.0

    def _rot_monitor():
        pending: Dict[int, tuple] = {}
        cursor = 0
        while True:
            rot_log = chaos.rot_log
            while cursor < len(rot_log):
                when, holder, logical, index = rot_log[cursor]
                skey = (
                    chunk_key(logical, index) if index is not None else logical
                )
                pending[cursor] = (when, holder, skey)
                cursor += 1
            for entry_id in sorted(pending):
                when, holder, skey = pending[entry_id]
                if not _item_corrupt(holder, skey):
                    # purged: scrub/foreground read dropped it, a repair
                    # or overwrite replaced it — the rot is gone
                    age = sim.now - when
                    ttd_truth.append(age)
                    if age > ttd_bound:
                        violations["slow_detection"].append(
                            {"server": holder, "key": skey,
                             "rotted_at": when, "purged_at": sim.now}
                        )
                    del pending[entry_id]
            if sim.now >= horizon:
                break
            yield sim.timeout(monitor_tick)
        for when, holder, skey in pending.values():
            violations["undetected_rot"].append(
                {"server": holder, "key": skey, "rotted_at": when}
            )

    if scrubbing:
        sim.process(_rot_monitor(), name="rot-monitor")

    # -- gate 3: certificates vs ground truth ------------------------------
    def _unrecoverable_keys() -> List[str]:
        out = []
        for model in models:
            for key in sorted(model.acked):
                if key in model.uncertain or key in model.inflight:
                    continue
                if _bad_chunks(key) > tolerated:
                    out.append(key)
        return out

    def _on_audit(report) -> None:
        if not report.certified:
            return
        bad_keys = _unrecoverable_keys()
        if bad_keys:
            violations["audit_contradictions"].append(
                {"time": report.time, "keys": bad_keys}
            )

    if scrubber is not None:
        scrubber.on_audit = _on_audit

    # -- the workload ------------------------------------------------------
    def _check_read(model, key, value, stage) -> None:
        expected = model.acked.get(key)
        if value is None or not value.has_data:
            if expected is not None and key not in model.uncertain:
                violations["lost_writes"].append(
                    {"key": key, "stage": stage, "reason": "miss"}
                )
            return
        if stage == "run":
            model.get_ok += 1
        data = value.data
        if key in model.uncertain:
            legal = {expected, model.last_attempt.get(key)}
            legal.discard(None)
            if legal and data not in legal:
                violations["wrong_bytes"].append(
                    {"key": key, "stage": stage,
                     "reason": "uncertain-mismatch"}
                )
        elif expected is not None and data != expected:
            violations["wrong_bytes"].append(
                {"key": key, "stage": stage, "reason": "mismatch"}
            )

    def _worker(client, rng, model):
        while sim.now < config.duration:
            yield sim.timeout(rng.expovariate(1.0 / config.op_gap))
            key = "%s:k%03d" % (model.name, rng.randrange(config.key_space))
            if rng.random() < config.set_fraction:
                model.seq += 1
                model.set_attempts += 1
                data = _value_bytes(key, model.seq, config.value_size)
                model.last_attempt[key] = data
                model.inflight.add(key)
                try:
                    acked = yield from client.set(
                        key, Payload.from_bytes(data)
                    )
                except KVStoreError:
                    acked = False
                model.inflight.discard(key)
                if acked:
                    model.acked[key] = data
                    model.uncertain.discard(key)
                    model.set_acks += 1
                else:
                    model.uncertain.add(key)
                    model.set_failures += 1
            else:
                model.get_attempts += 1
                try:
                    value = yield from client.get(key)
                except KVStoreError:
                    model.unavailable += 1
                    continue
                _check_read(model, key, value, stage="run")

    for client, rng, model in zip(clients, rngs, models):
        sim.process(_worker(client, rng, model), name="%s-load" % client.name)
    cluster.run()  # workload + rot + scrub loops all drain at `horizon`

    chaos.heal_all()
    chaos.uninstall()

    # -- gate 2a: the clean-room sweep (only gated on the scrub run) -------
    def _sweep():
        client = cluster.add_client(name_hint="sweep")
        for model in models:
            for key in sorted(set(model.acked) | model.uncertain):
                try:
                    value = yield from client.get(key)
                except KVStoreError as exc:
                    if key in model.acked and key not in model.uncertain:
                        violations["lost_writes"].append(
                            {"key": key, "stage": "sweep",
                             "reason": str(exc)}
                        )
                    continue
                _check_read(model, key, value, stage="sweep")

    if scrubbing:
        sim.process(_sweep(), name="scrub-sweep")
        cluster.run()

        # -- gate 2b: no rotten bytes left anywhere ------------------------
        for name in sorted(cluster.servers):
            server = cluster.servers[name]
            for skey in server.cache.keys():
                if _item_corrupt(name, skey):
                    violations["residual_corruption"].append(
                        {"server": name, "key": skey}
                    )

    # -- report ------------------------------------------------------------
    ops = {
        "set_attempts": sum(m.set_attempts for m in models),
        "set_acks": sum(m.set_acks for m in models),
        "set_failures": sum(m.set_failures for m in models),
        "get_attempts": sum(m.get_attempts for m in models),
        "get_ok": sum(m.get_ok for m in models),
        "unavailable": sum(m.unavailable for m in models),
    }
    get_samples: List[float] = []
    for client in clients:
        get_samples.extend(client.latencies("get"))
    phase = {
        "ops": ops,
        "violations": violations,
        "rot_injected": len(chaos.rot_log),
        "get_latency": _latency_summary(get_samples),
        "virtual_time": sim.now,
    }
    if scrubbing:
        snapshot = cluster.metrics.snapshot("scrub.")
        ttd_hist = snapshot.get("scrub.time_to_detect") or {}
        tth_hist = snapshot.get("scrub.time_to_heal") or {}
        phase["scrub"] = {
            "chunks_verified": snapshot.get("scrub.chunks_verified", 0),
            "corrupt_found": snapshot.get("scrub.corrupt_found", 0),
            "repairs_triggered": snapshot.get("scrub.repairs_triggered", 0),
            "bytes_read": snapshot.get("scrub.bytes_read", 0),
            "passes": scrubber.passes,
            "time_to_detect": ttd_hist,
            "time_to_heal": tth_hist,
            "ttd_truth_max": max(ttd_truth) if ttd_truth else 0.0,
            "ttd_truth_count": len(ttd_truth),
            "ttd_bound": ttd_bound,
            "audits": [report.to_dict() for report in scrubber.audits],
            "audits_certified": sum(
                1 for report in scrubber.audits if report.certified
            ),
        }
    return phase


def run_scrub(config: ScrubSoakConfig) -> dict:
    """Execute one seeded scrub soak; returns the JSON-able report."""
    scrub_phase = _run_phase(config, scrubbing=True)
    baseline_phase = (
        _run_phase(config, scrubbing=False) if config.baseline else None
    )

    violations = scrub_phase["violations"]
    gates = {
        "rot_detected_in_bound": (
            not violations["undetected_rot"]
            and not violations["slow_detection"]
        ),
        "no_data_loss": (
            not violations["lost_writes"]
            and not violations["wrong_bytes"]
            and not violations["residual_corruption"]
        ),
        "certificates_honest": not violations["audit_contradictions"],
    }
    p99_ratio = None
    if baseline_phase is not None:
        scrub_p99 = (scrub_phase["get_latency"] or {}).get("p99_us")
        base_p99 = (baseline_phase["get_latency"] or {}).get("p99_us")
        if scrub_p99 and base_p99:
            p99_ratio = scrub_p99 / base_p99
        gates["foreground_p99"] = (
            p99_ratio is None or p99_ratio <= config.p99_ratio_limit
        )

    config_dict = {
        "seed": config.seed,
        "duration": config.duration,
        "scheme": config.scheme,
        "fault_profile": config.fault_profile,
        "servers": config.servers,
        "k": config.k,
        "m": config.m,
        "scan_period": config.scan_period,
        "audit_period": config.audit_period,
        "epsilon": config.epsilon,
        "p_bound": config.p_bound,
    }
    digest_input = {
        "config": config_dict,
        "ops": scrub_phase["ops"],
        "rot_injected": scrub_phase["rot_injected"],
        "scrub": {
            name: scrub_phase["scrub"][name]
            for name in (
                "chunks_verified",
                "corrupt_found",
                "repairs_triggered",
                "bytes_read",
                "passes",
                "audits_certified",
            )
        },
        "violations": violations,
    }
    digest = hashlib.sha256(
        json.dumps(digest_input, sort_keys=True).encode()
    ).hexdigest()
    return {
        "config": config_dict,
        "ok": all(gates.values()),
        "gates": gates,
        "ops": scrub_phase["ops"],
        "violations": violations,
        "rot_injected": scrub_phase["rot_injected"],
        "scrub": scrub_phase["scrub"],
        "get_latency": scrub_phase["get_latency"],
        "baseline_get_latency": (
            baseline_phase["get_latency"] if baseline_phase else None
        ),
        "p99_ratio": p99_ratio,
        "virtual_time": scrub_phase["virtual_time"],
        "digest": digest,
    }


def run_scrub_suite(
    seeds: List[int], config: Optional[ScrubSoakConfig] = None
) -> dict:
    """Run the scrub soak across seeds; aggregate verdict + reports."""
    import dataclasses

    base = config or ScrubSoakConfig()
    reports = []
    for seed in seeds:
        reports.append(run_scrub(dataclasses.replace(base, seed=seed)))
    return {
        "ok": all(r["ok"] for r in reports),
        "seeds": list(seeds),
        "reports": reports,
    }
