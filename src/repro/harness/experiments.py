"""Per-figure experiment runners (see DESIGN.md's experiment index).

Every runner is deterministic and returns plain result rows; the benchmark
suite under ``benchmarks/`` executes them and prints paper-style tables.
``scale=1.0`` reproduces the paper's full parameters; the default bench
scale shrinks counts (not sizes) to keep wall-clock reasonable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.boldio.burstbuffer import BoldioSystem
from repro.boldio.dfsio import run_dfsio_boldio, run_dfsio_lustre
from repro.boldio.lustre import LustreFS
from repro.core.cluster import build_cluster
from repro.ec.cost_model import CodingCostModel
from repro.network.fabric import Fabric
from repro.network.profiles import profile_by_name
from repro.obs.export import write_chrome_trace
from repro.simulation import Simulator
from repro.workloads.keys import KeyValueSource
from repro.workloads.microbench import (
    load_keys,
    run_get_benchmark,
    run_memory_pressure,
    run_set_benchmark,
)
from repro.workloads.ycsb import WORKLOAD_A, WORKLOAD_B, YCSBSpec, run_ycsb

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 ** 3

#: Figure 8 value-size sweep (512 B - 1 MB, Section VI-B).
MICRO_SIZES = (512, 4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB, MIB)

#: The resilient configurations of Figure 8 (all tolerate 2 failures).
MICRO_SCHEMES = ("sync-rep", "async-rep", "era-ce-cd", "era-se-cd", "era-se-sd")

#: ARPE send window used by the OHB-style benches (double-buffered x2).
MICRO_WINDOW = 4


# ---------------------------------------------------------------------------
# Figure 4: Jerasure encode/decode study
# ---------------------------------------------------------------------------


@dataclass
class CodingTimeRow:
    scheme: str
    value_size: int
    encode_us: float
    decode1_us: float  # one node failure
    decode2_us: float  # two node failures


def fig4_jerasure(
    sizes: Sequence[int] = MICRO_SIZES,
    k: int = 3,
    m: int = 2,
    cpu_speed_factor: float = 1.0,
) -> List[CodingTimeRow]:
    """Figure 4: stand-alone coding times for RS_Van, CRS, R6-Lib."""
    model = CodingCostModel(cpu_speed_factor=cpu_speed_factor)
    rows = []
    for scheme in ("rs_van", "crs", "r6_lib"):
        for size in sizes:
            rows.append(
                CodingTimeRow(
                    scheme=scheme,
                    value_size=size,
                    encode_us=model.encode_time(scheme, size, k, m) * 1e6,
                    decode1_us=model.decode_time(scheme, size, k, m, 1) * 1e6,
                    decode2_us=model.decode_time(scheme, size, k, m, 2) * 1e6,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 8: Set/Get latency micro-benchmarks
# ---------------------------------------------------------------------------


@dataclass
class MicroLatencyRow:
    scheme: str
    op: str
    value_size: int
    failures: int
    avg_latency_us: float
    p99_latency_us: float


def _fresh_cluster(scheme: str, profile: str = "ri-qdr", trace: bool = False):
    return build_cluster(
        profile=profile,
        scheme=scheme,
        servers=5,
        memory_per_server=20 * GIB,
        trace=trace,
    )


def _export_trace(cluster, trace_dir: Optional[str], label: str) -> Optional[str]:
    """Write one experiment run's Chrome trace; returns the path or None.

    Files land as ``<trace_dir>/<label>.trace.json`` — open them in
    Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
    """
    if not trace_dir:
        return None
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, "%s.trace.json" % label)
    return write_chrome_trace(cluster.tracer, path, cluster.metrics)


def fig8_microbench(
    sizes: Sequence[int] = MICRO_SIZES,
    schemes: Sequence[str] = MICRO_SCHEMES,
    num_ops: int = 1000,
    failed_servers: int = 0,
    ops_kind: str = "both",
    trace_dir: Optional[str] = None,
) -> List[MicroLatencyRow]:
    """Figures 8(a)-(c): OHB latency on RI-QDR, 5 servers, RS(3,2)/Rep=3.

    ``failed_servers=2`` reproduces Figure 8(c): the last two placement
    servers crash after the load phase, forcing degraded reads.  Degraded
    runs use window=1 (per-op recovery latency); others use the default
    ARPE window.  With ``trace_dir``, every configuration's run is
    exported as a Chrome trace JSON file into that directory.
    """
    rows: List[MicroLatencyRow] = []
    window = 1 if failed_servers else MICRO_WINDOW
    trace = bool(trace_dir)
    for scheme in schemes:
        blocking = scheme == "sync-rep"
        for size in sizes:
            if ops_kind in ("both", "set") and not failed_servers:
                cluster = _fresh_cluster(scheme, trace=trace)
                client = cluster.add_client(window=window)
                result = run_set_benchmark(
                    cluster, client, num_ops=num_ops, value_size=size,
                    blocking=blocking,
                )
                _export_trace(
                    cluster, trace_dir, "fig8-set-%s-%d" % (scheme, size)
                )
                rows.append(
                    MicroLatencyRow(
                        scheme=scheme,
                        op="set",
                        value_size=size,
                        failures=0,
                        avg_latency_us=result.avg_latency * 1e6,
                        p99_latency_us=result.service.p99 * 1e6,
                    )
                )
            if ops_kind in ("both", "get"):
                cluster = _fresh_cluster(scheme, trace=trace)
                client = cluster.add_client(window=window)
                source = KeyValueSource()
                load_keys(cluster, client, num_ops, size, source)
                if failed_servers:
                    victims = ["server-%d" % (4 - i) for i in range(failed_servers)]
                    cluster.fail_servers(victims)
                result = run_get_benchmark(
                    cluster, client, num_ops=num_ops, value_size=size,
                    blocking=blocking, preload=False, source=source,
                )
                _export_trace(
                    cluster, trace_dir, "fig8-get-%s-%d" % (scheme, size)
                )
                rows.append(
                    MicroLatencyRow(
                        scheme=scheme,
                        op="get",
                        value_size=size,
                        failures=failed_servers,
                        avg_latency_us=result.avg_latency * 1e6,
                        p99_latency_us=result.service.p99 * 1e6,
                    )
                )
    return rows


# ---------------------------------------------------------------------------
# Figure 9: time-wise breakdown
# ---------------------------------------------------------------------------


@dataclass
class BreakdownRow:
    scheme: str
    op: str
    value_size: int
    request_us: float
    wait_us: float
    encode_us: float
    decode_us: float


def fig9_breakdown(
    sizes: Sequence[int] = (64 * KIB, 256 * KIB, MIB),
    schemes: Sequence[str] = ("async-rep", "era-ce-cd", "era-se-cd", "era-se-sd"),
    num_ops: int = 500,
    trace_dir: Optional[str] = None,
) -> List[BreakdownRow]:
    """Figure 9: client-side phase breakdown for Set (no failures) and Get
    (two node failures), value sizes 64 KB - 1 MB."""
    rows: List[BreakdownRow] = []
    trace = bool(trace_dir)
    for scheme in schemes:
        for size in sizes:
            cluster = _fresh_cluster(scheme, trace=trace)
            client = cluster.add_client(window=MICRO_WINDOW)
            result = run_set_benchmark(
                cluster, client, num_ops=num_ops, value_size=size
            )
            _export_trace(
                cluster, trace_dir, "fig9-set-%s-%d" % (scheme, size)
            )
            rows.append(
                BreakdownRow(
                    scheme=scheme,
                    op="set",
                    value_size=size,
                    request_us=result.breakdown.request * 1e6,
                    wait_us=result.breakdown.wait * 1e6,
                    encode_us=result.breakdown.encode * 1e6,
                    decode_us=result.breakdown.decode * 1e6,
                )
            )

            cluster = _fresh_cluster(scheme, trace=trace)
            client = cluster.add_client(window=1)
            source = KeyValueSource()
            load_keys(cluster, client, num_ops, size, source)
            cluster.fail_servers(["server-4", "server-3"])
            result = run_get_benchmark(
                cluster, client, num_ops=num_ops, value_size=size,
                preload=False, source=source,
            )
            _export_trace(
                cluster, trace_dir, "fig9-get-degraded-%s-%d" % (scheme, size)
            )
            rows.append(
                BreakdownRow(
                    scheme=scheme,
                    op="get",
                    value_size=size,
                    request_us=result.breakdown.request * 1e6,
                    wait_us=result.breakdown.wait * 1e6,
                    encode_us=result.breakdown.encode * 1e6,
                    decode_us=result.breakdown.decode * 1e6,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 10: memory efficiency
# ---------------------------------------------------------------------------


@dataclass
class MemoryRow:
    scheme: str
    num_clients: int
    memory_utilization: float
    lost_bytes: int
    memory_overhead_ratio: float = 0.0


def fig10_memory(
    client_counts: Sequence[int] = (1, 8, 16, 24, 32, 40),
    scale: float = 0.05,
    schemes: Sequence[str] = ("async-rep", "era-ce-cd"),
) -> List[MemoryRow]:
    """Figure 10: % of aggregated memory used as writers scale to 40.

    Each client writes 1K x 1 MB values into 5 x 20 GB servers.  ``scale``
    shrinks both the per-client op count and the server memory by the same
    factor, preserving exactly where replication saturates (>33 clients)
    while erasure coding stays at ~56%.
    """
    ops = max(1, int(1000 * scale))
    memory = max(64 * MIB, int(20 * GIB * scale))
    rows: List[MemoryRow] = []
    for scheme in schemes:
        for count in client_counts:
            cluster = build_cluster(
                profile="ri-qdr", scheme=scheme, servers=5,
                memory_per_server=memory,
            )
            result = run_memory_pressure(
                cluster, num_clients=count, ops_per_client=ops,
                value_size=MIB,
            )
            rows.append(
                MemoryRow(
                    scheme=scheme,
                    num_clients=count,
                    memory_utilization=result.memory_utilization,
                    lost_bytes=result.lost_bytes,
                    memory_overhead_ratio=result.memory_overhead_ratio,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 11 & 12: YCSB latency and throughput
# ---------------------------------------------------------------------------


@dataclass
class YCSBRow:
    profile: str
    workload: str
    scheme: str
    value_size: int
    throughput_ops: float
    read_mean_us: float
    write_mean_us: float


YCSB_SCHEMES = ("no-rep-ipoib", "no-rep", "async-rep", "era-ce-cd", "era-se-cd")


def _ycsb_cluster(scheme: str, profile: str, trace: bool = False):
    if scheme == "no-rep-ipoib":
        return build_cluster(
            profile=profile + "-ipoib", scheme="no-rep", servers=5,
            memory_per_server=64 * GIB, trace=trace,
        )
    return build_cluster(
        profile=profile, scheme=scheme, servers=5, memory_per_server=64 * GIB,
        trace=trace,
    )


def fig11_12_ycsb(
    profile: str = "sdsc-comet",
    workloads: Sequence[YCSBSpec] = (WORKLOAD_A, WORKLOAD_B),
    value_sizes: Sequence[int] = (1 * KIB, 4 * KIB, 16 * KIB, 32 * KIB),
    schemes: Sequence[str] = YCSB_SCHEMES,
    num_clients: int = 150,
    client_hosts: int = 10,
    record_count: int = 250_000,
    ops_per_client: int = 2_500,
    trace_dir: Optional[str] = None,
) -> List[YCSBRow]:
    """Figures 11 and 12: YCSB A/B latency and throughput sweeps.

    One run yields both the latency series (Fig. 11) and the throughput
    series (Fig. 12) for its configuration.  With ``trace_dir``, each
    configuration's full run is exported as a Chrome trace JSON file.
    """
    rows: List[YCSBRow] = []
    for spec_base in workloads:
        for size in value_sizes:
            spec = YCSBSpec(
                spec_base.name,
                spec_base.read_proportion,
                spec_base.update_proportion,
                record_count=record_count,
                ops_per_client=ops_per_client,
                value_size=size,
            )
            for scheme in schemes:
                cluster = _ycsb_cluster(scheme, profile, trace=bool(trace_dir))
                result = run_ycsb(
                    cluster, spec, num_clients=num_clients,
                    client_hosts=client_hosts,
                )
                _export_trace(
                    cluster,
                    trace_dir,
                    "ycsb-%s-%s-%d" % (spec.name, scheme, size),
                )
                rows.append(
                    YCSBRow(
                        profile=profile,
                        workload=spec.name,
                        scheme=scheme,
                        value_size=size,
                        throughput_ops=result.throughput,
                        read_mean_us=(
                            result.read_latency.mean * 1e6
                            if result.read_latency
                            else 0.0
                        ),
                        write_mean_us=(
                            result.write_latency.mean * 1e6
                            if result.write_latency
                            else 0.0
                        ),
                    )
                )
    return rows


def fig11_ycsb_latency(**kwargs) -> List[YCSBRow]:
    """Figure 11 alias (latency columns of the combined YCSB run)."""
    return fig11_12_ycsb(**kwargs)


def fig12_ycsb_throughput(**kwargs) -> List[YCSBRow]:
    """Figure 12 alias (throughput column of the combined YCSB run)."""
    return fig11_12_ycsb(**kwargs)


# ---------------------------------------------------------------------------
# Figure 13: TestDFSIO over Boldio and Lustre
# ---------------------------------------------------------------------------


@dataclass
class DFSIORow:
    backend: str
    mode: str
    total_gb: float
    throughput_mib: float


def fig13_boldio(
    data_sizes_gb: Sequence[float] = (10.0, 20.0, 30.0, 40.0),
    scale: float = 1.0,
    schemes: Sequence[str] = ("async-rep", "era-ce-cd", "era-se-cd"),
    include_lustre_direct: bool = True,
) -> List[DFSIORow]:
    """Figure 13: TestDFSIO write/read throughput, 10-40 GB jobs.

    Boldio: 8 DataNodes x 4 maps over a 5-server burst buffer (24 GB
    each); Lustre-Direct: 12 DataNodes x 4 maps straight to the OSTs.
    ``scale`` multiplies the job bytes (and buffer memory) to trade
    fidelity for wall-clock.
    """
    rows: List[DFSIORow] = []
    for total_gb in data_sizes_gb:
        total_bytes = int(total_gb * scale * GIB)
        boldio_maps = 8 * 4
        file_size = max(MIB, total_bytes // boldio_maps)
        memory = max(64 * MIB, int(24 * GIB * scale))
        for scheme in schemes:
            cluster = build_cluster(
                profile="ri-qdr", scheme=scheme, servers=5,
                memory_per_server=memory,
            )
            lustre = LustreFS(cluster.sim, cluster.fabric)
            system = BoldioSystem(cluster, lustre)
            write = run_dfsio_boldio(system, mode="write", file_size=file_size)
            read = run_dfsio_boldio(system, mode="read", file_size=file_size)
            for result in (write, read):
                rows.append(
                    DFSIORow(
                        backend=result.backend,
                        mode=result.mode,
                        total_gb=total_gb,
                        throughput_mib=result.throughput_mib,
                    )
                )
        if include_lustre_direct:
            sim = Simulator()
            fabric = Fabric(sim, profile_by_name("ri-qdr"))
            lustre = LustreFS(sim, fabric)
            direct_maps = 12 * 4
            direct_file = max(MIB, total_bytes // direct_maps)
            write = run_dfsio_lustre(
                sim, fabric, lustre, mode="write", file_size=direct_file
            )
            read = run_dfsio_lustre(
                sim, fabric, lustre, mode="read", file_size=direct_file
            )
            for result in (write, read):
                rows.append(
                    DFSIORow(
                        backend=result.backend,
                        mode=result.mode,
                        total_gb=total_gb,
                        throughput_mib=result.throughput_mib,
                    )
                )
    return rows


#: experiment id -> runner, for discovery by tools and docs.
EXPERIMENTS: Dict[str, object] = {
    "fig4": fig4_jerasure,
    "fig8": fig8_microbench,
    "fig9": fig9_breakdown,
    "fig10": fig10_memory,
    "fig11": fig11_ycsb_latency,
    "fig12": fig12_ycsb_throughput,
    "fig13": fig13_boldio,
}
