"""The Boldio burst-buffer deployment (Section V).

Wires a resilient KV cluster to a Lustre filesystem:

- every chunk stored on a Boldio server is queued for an **asynchronous
  flush** to Lustre (one background flusher process per server), so the
  data outlives the volatile cache without slowing down the write path;
- reads are served from the KV layer; a miss (evicted or lost chunk)
  falls back to a Lustre stripe read — slower, but correct.

The KV cluster's resilience scheme is whatever the caller chose:
``async-rep`` reproduces the paper's ``Boldio_Async-Rep`` and the
``era-*`` schemes its proposed erasure-coded variants.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.core.cluster import KVCluster
from repro.simulation import Store
from repro.store.server import MemcachedServer


class BoldioSystem:
    """A KV cluster acting as a burst buffer over a Lustre filesystem."""

    def __init__(self, cluster: KVCluster, lustre, flush_batch: int = 8):
        self.cluster = cluster
        self.lustre = lustre
        self.sim = cluster.sim
        self.flush_batch = flush_batch
        self.flushed_items = 0
        self.flushed_bytes = 0
        self._inflight_flushes = 0
        self._flush_queues: Dict[str, Store] = {}
        for name, server in cluster.servers.items():
            queue = Store(self.sim)
            self._flush_queues[name] = queue
            server.on_store = self._make_store_hook(queue)
            self.sim.process(
                self._flusher(server, queue), name="%s.flusher" % name
            )

    # -- write path: async persistence ---------------------------------------
    def _make_store_hook(self, queue: Store):
        def hook(key: str, value_len: int) -> None:
            queue.put((key, value_len))

        return hook

    def _flusher(self, server: MemcachedServer, queue: Store) -> Generator:
        """Drain stored chunks to Lustre, ``flush_batch`` RPCs in flight."""
        while True:
            key, value_len = yield queue.get()
            batch = [(key, value_len)]
            while len(batch) < self.flush_batch:
                more = queue.try_get()
                if more is None:
                    break
                batch.append(more)
            self._inflight_flushes += len(batch)
            events = []
            for item_key, item_len in batch:
                path = self._flush_path(server.name, item_key)
                if not self.lustre.exists(path):
                    yield self.lustre.create(path)
                events.append(
                    self.lustre.write_stripe(server, path, 0, item_len)
                )
            for event in events:
                response = yield event
                if response.ok:
                    self.flushed_items += 1
            self.flushed_bytes += sum(length for _k, length in batch)
            self._inflight_flushes -= len(batch)

    @staticmethod
    def _flush_path(server_name: str, key: str) -> str:
        # One Lustre object per cached chunk, namespaced by holder.
        return "/boldio/%s/%s" % (server_name, key.replace("\x00", "+"))

    # -- read path: miss fallback ---------------------------------------------
    def read_with_fallback(
        self, client, key: str, expected_size: int
    ) -> Generator:
        """Get from the KV layer; on miss, read the value from Lustre.

        Returns ``(payload_size, from_cache)``.
        """
        value = yield from client.get(key)
        if value is not None:
            return value.size, True
        # Miss: the chunk must be fetched from the PFS (cold/evicted).
        path = self._fallback_path(client, key)
        event = self.lustre.read_stripe(client, path, 0, expected_size)
        response = yield event
        size = response.value.size if response.ok and response.value else 0
        return size, False

    def _fallback_path(self, client, key: str) -> str:
        primary = self.cluster.ring.primary(key)
        return self._flush_path(primary, key)

    # -- accounting ------------------------------------------------------------
    def pending_flushes(self) -> int:
        """Chunks queued or currently being written to Lustre."""
        queued = sum(len(q) for q in self._flush_queues.values())
        return queued + self._inflight_flushes

    def drain_flushes(self) -> Generator:
        """Process generator: wait for all pending flushes to land."""
        while self.pending_flushes() > 0:
            yield self.sim.timeout(1e-3)
