"""Lustre parallel-filesystem model.

The paper's RI-QDR cluster backs Boldio with a small HDD-based Lustre
setup (five storage nodes, 1 TB).  The model captures what matters for
Figure 13:

- a metadata server (MDS) charging a fixed service time per open/create;
- object storage targets (OSTs) on fabric endpoints, each with a
  FIFO-timeline disk: writes stream at ``ost_write_bandwidth`` (journaled,
  mostly sequential), reads at ``ost_read_bandwidth`` (many concurrent
  TestDFSIO streams seek against each other, so the effective rate is far
  below the sequential number — this asymmetry is what makes
  ``Lustre-Direct`` reads so slow in the paper);
- round-robin striping of 1 MB stripes across OSTs.

File *contents* are not stored — Lustre here is a persistence/timing
substrate; data integrity is exercised end-to-end in the KV layer above.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.network.fabric import Fabric
from repro.simulation import Event, Simulator
from repro.store import protocol
from repro.store.hashring import stable_hash
from repro.store.protocol import PendingTable, Request, Response

MIB = 1024 * 1024

#: MDS service time per metadata operation (open/create/stat).
MDS_SERVICE_TIME = 40e-6


class DiskTimeline:
    """FIFO disk bandwidth reservation (same idea as a network Link)."""

    def __init__(self, sim: Simulator, write_bandwidth: float, read_bandwidth: float):
        self.sim = sim
        self.write_bandwidth = write_bandwidth
        self.read_bandwidth = read_bandwidth
        self.busy_until = 0.0
        self.bytes_written = 0
        self.bytes_read = 0

    def reserve(self, nbytes: int, is_write: bool) -> float:
        """Queue an I/O; returns the delay until it completes."""
        bandwidth = self.write_bandwidth if is_write else self.read_bandwidth
        start = max(self.sim.now, self.busy_until)
        end = start + nbytes / bandwidth
        self.busy_until = end
        if is_write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes
        return end - self.sim.now


class OstServer:
    """One object storage target: a fabric endpoint fronting a disk."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        name: str,
        write_bandwidth: float,
        read_bandwidth: float,
    ):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        self.endpoint = fabric.add_node(name)
        self.disk = DiskTimeline(sim, write_bandwidth, read_bandwidth)
        self.requests_served = 0
        sim.process(self._dispatch_loop(), name="%s.dispatch" % name)

    def _dispatch_loop(self) -> Generator:
        while True:
            message = yield self.endpoint.inbox.get()
            request = message.payload
            if isinstance(request, Request):
                self.sim.process(self._serve(request))

    def _serve(self, request: Request) -> Generator:
        self.requests_served += 1
        if request.op == "ost_write":
            size = request.value.size if request.value else 0
            yield self.sim.timeout(self.disk.reserve(size, is_write=True))
            response = Response(
                req_id=request.req_id, ok=True, server=self.name
            )
        elif request.op == "ost_read":
            size = int(request.meta.get("size", 0))
            yield self.sim.timeout(self.disk.reserve(size, is_write=False))
            from repro.common.payload import Payload

            response = Response(
                req_id=request.req_id,
                ok=True,
                server=self.name,
                value=Payload.sized(size),
            )
        else:
            response = Response(
                req_id=request.req_id,
                ok=False,
                server=self.name,
                error=protocol.ERR_UNKNOWN_OP,
            )
        send = self.fabric.send(
            self.name,
            request.reply_to,
            size=response.wire_size(),
            payload=response,
            tag=protocol.TAG_RESPONSE,
        )
        send.defuse()


@dataclass
class LustreFile:
    """Metadata for one file (size known after writes complete)."""

    path: str
    size: int = 0
    stripe_count: int = 0
    created_at: float = 0.0


class LustreFS:
    """The filesystem facade: MDS bookkeeping + striped OST I/O.

    Clients are any fabric endpoints with a :class:`PendingTable` whose
    dispatch loop routes responses (KV clients, Boldio servers, and the
    TestDFSIO DataNode drivers all qualify).
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        num_osts: int = 5,
        stripe_size: int = MIB,
        ost_write_bandwidth: float = 440e6,
        ost_read_bandwidth: float = 195e6,
    ):
        if num_osts < 1:
            raise ValueError("need at least one OST")
        self.sim = sim
        self.fabric = fabric
        self.stripe_size = stripe_size
        self.osts = [
            OstServer(
                sim,
                fabric,
                "ost-%d" % i,
                write_bandwidth=ost_write_bandwidth,
                read_bandwidth=ost_read_bandwidth,
            )
            for i in range(num_osts)
        ]
        self.files: Dict[str, LustreFile] = {}
        self._mds_busy_until = 0.0

    # -- metadata ---------------------------------------------------------
    def _mds_delay(self) -> float:
        """FIFO MDS service queue: one metadata op at a time."""
        start = max(self.sim.now, self._mds_busy_until)
        end = start + MDS_SERVICE_TIME
        self._mds_busy_until = end
        return end - self.sim.now

    def create(self, path: str) -> Event:
        """Create (or truncate) a file; returns the MDS completion event."""
        self.files[path] = LustreFile(
            path=path, stripe_count=len(self.osts), created_at=self.sim.now
        )
        return self.sim.timeout(self._mds_delay())

    def stat(self, path: str) -> Optional[LustreFile]:
        """File metadata, or None when absent (no MDS time charged)."""
        return self.files.get(path)

    def exists(self, path: str) -> bool:
        """Whether the path has been created."""
        return path in self.files

    # -- striping ---------------------------------------------------------
    def ost_for(self, path: str, stripe_index: int) -> OstServer:
        """Round-robin striping with a per-file starting offset."""
        base = stable_hash(path) % len(self.osts)
        return self.osts[(base + stripe_index) % len(self.osts)]

    # -- data path ----------------------------------------------------------
    def write_stripe(
        self,
        node,
        path: str,
        stripe_index: int,
        size: int,
    ) -> Event:
        """Write one stripe from ``node`` (non-blocking; event on ack).

        ``node`` must expose ``name``, ``pending`` and a request sequence
        like :class:`repro.store.server.MemcachedServer` does.
        """
        from repro.common.payload import Payload

        file = self.files.get(path)
        if file is None:
            raise KeyError("write to non-existent file %r" % path)
        file.size = max(file.size, stripe_index * self.stripe_size + size)
        ost = self.ost_for(path, stripe_index)
        request = Request(
            op="ost_write",
            key="%s#%d" % (path, stripe_index),
            req_id=node.next_req_id(),
            reply_to=node.name,
            value=Payload.sized(size),
        )
        return protocol.issue_request(self.fabric, node.pending, request, ost.name)

    def read_stripe(
        self,
        node,
        path: str,
        stripe_index: int,
        size: int,
    ) -> Event:
        """Read one stripe into ``node`` (non-blocking; event on data)."""
        ost = self.ost_for(path, stripe_index)
        request = Request(
            op="ost_read",
            key="%s#%d" % (path, stripe_index),
            req_id=node.next_req_id(),
            reply_to=node.name,
            meta={"size": size},
        )
        return protocol.issue_request(self.fabric, node.pending, request, ost.name)

    # -- accounting ------------------------------------------------------------
    @property
    def total_bytes_written(self) -> int:
        """Bytes landed on all OST disks."""
        return sum(o.disk.bytes_written for o in self.osts)

    @property
    def total_bytes_read(self) -> int:
        """Bytes served from all OST disks."""
        return sum(o.disk.bytes_read for o in self.osts)


class LustreClientMixin:
    """Gives a fabric node the plumbing LustreFS expects."""

    def init_lustre_client(self, sim: Simulator) -> None:
        """Attach the pending-table plumbing LustreFS expects."""
        self.pending = PendingTable(sim)
        self._lustre_req_seq = itertools.count(1)

    def next_req_id(self) -> int:
        """Allocate a request id for a Lustre RPC."""
        return next(self._lustre_req_seq)
