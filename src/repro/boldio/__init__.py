"""Boldio: the burst-buffer-over-Lustre case study (Sections V and VI-D).

Boldio maps Hadoop I/O streams onto key-value pairs cached in the
RDMA-Memcached cluster (with client-initiated replication or, in this
paper, online erasure coding) and asynchronously persists them to Lustre.

- :mod:`repro.boldio.lustre` — the parallel filesystem substrate: MDS,
  striped OSTs with disk-bandwidth modelling, and client-side file I/O.
- :mod:`repro.boldio.burstbuffer` — the Boldio deployment: a KV cluster
  whose servers flush stored chunks to Lustre in the background, plus the
  read-miss fallback path.
- :mod:`repro.boldio.dfsio` — the TestDFSIO workload (Figure 13): map
  tasks streaming files through either Boldio or Lustre directly.
"""

from repro.boldio.burstbuffer import BoldioSystem
from repro.boldio.dfsio import DFSIOResult, run_dfsio_boldio, run_dfsio_lustre
from repro.boldio.lustre import LustreFS

__all__ = [
    "BoldioSystem",
    "DFSIOResult",
    "LustreFS",
    "run_dfsio_boldio",
    "run_dfsio_lustre",
]
