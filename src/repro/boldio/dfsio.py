"""TestDFSIO-style Hadoop I/O workload (Figure 13).

TestDFSIO launches one map task per file; each map streams its file
sequentially (the Java stream processing caps per-map throughput — the
``map_stream_bandwidth`` knob) while the chunks flow to storage:

- **Boldio mode**: chunks become 1 MB key-value pairs written through the
  resilient KV layer (8 DataNodes x 4 maps in the paper's setup).
- **Lustre-Direct mode**: chunks are striped straight onto the OSTs
  (12 DataNodes x 4 maps — the paper gives the direct path more nodes for
  a fair resource split).

Throughput is aggregate user bytes over the span of the whole phase.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, List

from repro.boldio.burstbuffer import BoldioSystem
from repro.boldio.lustre import LustreFS
from repro.common.payload import Payload
from repro.network.fabric import Fabric
from repro.simulation import Resource, Simulator
from repro.store.protocol import PendingTable, Response

MIB = 1024 * 1024

#: Effective per-map-task stream processing rate (Hadoop's Java I/O path;
#: calibrated so Boldio replication/erasure variants converge the way the
#: paper reports).
MAP_STREAM_BANDWIDTH = 180e6

#: distinguishes DataNode endpoints across phases on one fabric.
_LUSTRE_PHASE_SEQ = itertools.count()


@dataclass
class DFSIOResult:
    """Outcome of one TestDFSIO phase."""

    mode: str
    backend: str
    total_bytes: int
    duration: float
    num_maps: int
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def throughput(self) -> float:
        """Aggregate bytes/second over the phase."""
        return self.total_bytes / self.duration if self.duration else float("inf")

    @property
    def throughput_mib(self) -> float:
        """Aggregate MiB/s over the phase."""
        return self.throughput / MIB


class DataNodeHost:
    """A Hadoop DataNode driving Lustre directly (no KV layer)."""

    def __init__(self, sim: Simulator, fabric: Fabric, name: str):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        self.endpoint = fabric.add_node(name)
        self.pending = PendingTable(sim)
        self._req_seq = itertools.count(1)
        sim.process(self._dispatch_loop(), name="%s.dispatch" % name)

    def next_req_id(self) -> int:
        """Allocate a request id for a Lustre RPC."""
        return next(self._req_seq)

    def _dispatch_loop(self) -> Generator:
        while True:
            message = yield self.endpoint.inbox.get()
            if isinstance(message.payload, Response):
                self.pending.complete(message.payload)


def _chunk_count(file_size: int, chunk_size: int) -> int:
    return max(1, -(-file_size // chunk_size))


def run_dfsio_boldio(
    system: BoldioSystem,
    mode: str = "write",
    num_datanodes: int = 8,
    maps_per_node: int = 4,
    file_size: int = 1024 * MIB,
    chunk_size: int = MIB,
    window: int = 4,
    map_stream_bandwidth: float = MAP_STREAM_BANDWIDTH,
) -> DFSIOResult:
    """Run one TestDFSIO phase through the Boldio burst buffer."""
    if mode not in ("write", "read"):
        raise ValueError("mode must be 'write' or 'read'")
    cluster = system.cluster
    sim = cluster.sim
    maps = []
    hits = [0]
    misses = [0]
    for node in range(num_datanodes):
        for slot in range(maps_per_node):
            client = cluster.add_client(
                name_hint="dfsio", window=window, host="dn-%d" % node
            )
            maps.append((node * maps_per_node + slot, client))

    chunks = _chunk_count(file_size, chunk_size)

    def map_task(map_id: int, client) -> Generator:
        handles = []
        if mode == "write":
            for c in range(chunks):
                # The map produces data no faster than its stream rate.
                yield sim.timeout(chunk_size / map_stream_bandwidth)
                handles.append(
                    client.iset(
                        _dfsio_key(map_id, c), Payload.sized(chunk_size)
                    )
                )
            yield client.wait(handles)
        else:
            for c in range(chunks):
                yield sim.timeout(chunk_size / map_stream_bandwidth)
                size, from_cache = yield from system.read_with_fallback(
                    client, _dfsio_key(map_id, c), chunk_size
                )
                if from_cache:
                    hits[0] += 1
                else:
                    misses[0] += 1

    start = sim.now
    procs = [sim.process(map_task(mid, c)) for mid, c in maps]
    sim.run(sim.all_of(procs))
    duration = sim.now - start
    return DFSIOResult(
        mode=mode,
        backend="boldio-%s" % cluster.scheme.name,
        total_bytes=len(maps) * chunks * chunk_size,
        duration=duration,
        num_maps=len(maps),
        cache_hits=hits[0],
        cache_misses=misses[0],
    )


def run_dfsio_lustre(
    sim: Simulator,
    fabric: Fabric,
    lustre: LustreFS,
    mode: str = "write",
    num_datanodes: int = 12,
    maps_per_node: int = 4,
    file_size: int = 1024 * MIB,
    chunk_size: int = MIB,
    window: int = 4,
    map_stream_bandwidth: float = MAP_STREAM_BANDWIDTH,
) -> DFSIOResult:
    """Run one TestDFSIO phase directly against Lustre (the HPC default)."""
    if mode not in ("write", "read"):
        raise ValueError("mode must be 'write' or 'read'")
    phase_id = next(_LUSTRE_PHASE_SEQ)
    nodes = [
        DataNodeHost(sim, fabric, "ldn-%d-%d" % (phase_id, i))
        for i in range(num_datanodes)
    ]
    chunks = _chunk_count(file_size, chunk_size)

    def map_task(node: DataNodeHost, map_id: int) -> Generator:
        path = "/dfsio/file-%d" % map_id
        inflight = Resource(sim, window)
        outstanding: List = []
        if mode == "write":
            yield lustre.create(path)
        for c in range(chunks):
            yield sim.timeout(chunk_size / map_stream_bandwidth)
            slot = inflight.request()
            yield slot
            if mode == "write":
                event = lustre.write_stripe(node, path, c, chunk_size)
            else:
                event = lustre.read_stripe(node, path, c, chunk_size)

            def _release(_e, slot=slot):
                inflight.release(slot)

            event.callbacks.append(_release)
            outstanding.append(event)
        for event in outstanding:
            yield event

    start = sim.now
    procs = []
    map_id = 0
    for node in nodes:
        for _slot in range(maps_per_node):
            procs.append(sim.process(map_task(node, map_id)))
            map_id += 1
    sim.run(sim.all_of(procs))
    duration = sim.now - start
    return DFSIOResult(
        mode=mode,
        backend="lustre-direct",
        total_bytes=map_id * chunks * chunk_size,
        duration=duration,
        num_maps=map_id,
    )


def _dfsio_key(map_id: int, chunk: int) -> str:
    return "dfsio/%d/%d" % (map_id, chunk)
