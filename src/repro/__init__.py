"""repro — reproduction of "High-Performance and Resilient Key-Value Store
with Online Erasure Coding for Big Data Workloads" (ICDCS 2017).

The package builds the paper's full stack in simulation:

- :mod:`repro.simulation` — deterministic discrete-event engine.
- :mod:`repro.network` — RDMA fabric model (QDR/FDR/EDR + IPoIB).
- :mod:`repro.ec` — GF(2^8) erasure codecs (RS-Vandermonde, Cauchy-RS,
  RAID-6 Liberation) plus the Figure-4-calibrated cost model.
- :mod:`repro.store` — Memcached-like servers and the non-blocking
  client/ARPE stack.
- :mod:`repro.resilience` — the paper's contribution: Sync/Async
  replication and the four online-erasure-coding placements.
- :mod:`repro.model` — the analytical latency models (Equations 1-8).
- :mod:`repro.obs` — span tracing, metrics, and Chrome-trace export.
- :mod:`repro.workloads` — OHB micro-benchmarks, YCSB, TestDFSIO.
- :mod:`repro.boldio` — the Boldio burst-buffer over a Lustre model.
- :mod:`repro.harness` — per-figure experiment runners.

Quickstart::

    from repro import build_cluster, Payload

    cluster = build_cluster(scheme="era-ce-cd", servers=5, k=3, m=2)
    client = cluster.add_client()

    def app():
        yield from client.set("k", Payload.from_bytes(b"v" * 4096))
        value = yield from client.get("k")
        assert value.data == b"v" * 4096

    cluster.sim.process(app())
    cluster.run()
"""

from repro.common.payload import Payload
from repro.core.cluster import KVCluster, build_cluster
from repro.obs import MetricsRegistry, Tracer, write_chrome_trace
from repro.store.result import ErrorCode, OpResult

__version__ = "1.0.0"

__all__ = [
    "ErrorCode",
    "KVCluster",
    "MetricsRegistry",
    "OpResult",
    "Payload",
    "Tracer",
    "__version__",
    "build_cluster",
    "write_chrome_trace",
]
