"""Setup shim for offline editable installs.

The execution environment has no network and no ``wheel`` package, so the
PEP 517 editable-install path (which builds a wheel) fails.  This shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` route
(see pip.conf: no-build-isolation + no-use-pep517).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
