"""Figure 13: TestDFSIO throughput with Boldio burst buffers over Lustre.

Boldio: 8 DataNodes x 4 maps over 5 burst-buffer servers (24 GB each);
Lustre-Direct: 12 DataNodes x 4 maps.  Job sizes 10-40 GB at full scale.
"""

from conftest import FULL, run_once

from repro.harness import fig13_boldio, format_table

if FULL:
    SIZES_GB = (10.0, 20.0, 30.0, 40.0)
    SCALE = 1.0
else:
    SIZES_GB = (10.0, 40.0)
    SCALE = 0.05  # 0.5-2 GB actual I/O; same bottleneck structure


def _row(rows, backend, mode, size):
    return next(
        r
        for r in rows
        if r.backend == backend and r.mode == mode and r.total_gb == size
    )


def test_fig13_dfsio_throughput(benchmark):
    rows = run_once(
        benchmark, fig13_boldio, data_sizes_gb=SIZES_GB, scale=SCALE
    )

    print("\nFigure 13: TestDFSIO throughput (MiB/s), scale=%s" % SCALE)
    print(
        format_table(
            ["backend", "mode", "job_GB", "tput_MiB_s"],
            [[r.backend, r.mode, r.total_gb, r.throughput_mib] for r in rows],
        )
    )

    for size in SIZES_GB:
        era_w = _row(rows, "boldio-era-ce-cd", "write", size)
        rep_w = _row(rows, "boldio-async-rep", "write", size)
        direct_w = _row(rows, "lustre-direct", "write", size)
        era_r = _row(rows, "boldio-era-ce-cd", "read", size)
        rep_r = _row(rows, "boldio-async-rep", "read", size)
        direct_r = _row(rows, "lustre-direct", "read", size)
        se_w = _row(rows, "boldio-era-se-cd", "write", size)

        # paper: up to 2.6x over Lustre-Direct for writes ...
        assert era_w.throughput_mib > 2.0 * direct_w.throughput_mib
        # ... and up to 5.9x for reads
        assert era_r.throughput_mib > 3.5 * direct_r.throughput_mib
        # paper: Era-CE-CD matches Boldio_Async-Rep (no write overhead,
        # <9% read overhead)
        assert era_w.throughput_mib > 0.9 * rep_w.throughput_mib
        assert era_r.throughput_mib > 0.85 * rep_r.throughput_mib
        # paper: Era-SE-CD within 3-11% of Async-Rep
        assert se_w.throughput_mib > 0.85 * rep_w.throughput_mib
