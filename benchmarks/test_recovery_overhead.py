"""Recovery-overhead analysis — the paper's declared future work.

Section VI-D: "recovery overhead is of importance. Hence, we plan to
undertake detailed recovery overhead analysis" — this bench performs it:

1. degraded-read overhead while a failure is outstanding (online view);
2. the cost of background repair (bytes moved, decode work, wall time);
3. service latency during repair vs after it (repair gives the latency
   back because reads return to the systematic fast path).
"""

from conftest import run_once

from repro.core.cluster import build_cluster
from repro.harness.reporting import format_table
from repro.resilience.recovery import RepairManager
from repro.workloads.keys import KeyValueSource
from repro.workloads.microbench import load_keys, run_get_benchmark

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 ** 3
NUM_KEYS = 150
VALUE_SIZE = 256 * KIB


def test_recovery_overhead(benchmark):
    def run():
        cluster = build_cluster(
            scheme="era-ce-cd", servers=6, memory_per_server=4 * GIB
        )
        client = cluster.add_client(window=1)
        source = KeyValueSource()
        load_keys(cluster, client, NUM_KEYS, VALUE_SIZE, source)

        healthy = run_get_benchmark(
            cluster, client, num_ops=NUM_KEYS, value_size=VALUE_SIZE,
            preload=False, source=source,
        )

        victim = "server-2"
        cluster.servers[victim].fail()
        degraded = run_get_benchmark(
            cluster, client, num_ops=NUM_KEYS, value_size=VALUE_SIZE,
            preload=False, source=source,
        )

        repair = RepairManager(cluster, cluster.scheme)
        keys = [source.key(i) for i in range(NUM_KEYS)]
        start = cluster.sim.now

        def do_repair():
            yield from repair.repair_server(victim, keys)

        cluster.sim.run(cluster.sim.process(do_repair()))
        repair_time = cluster.sim.now - start

        repaired = run_get_benchmark(
            cluster, client, num_ops=NUM_KEYS, value_size=VALUE_SIZE,
            preload=False, source=source,
        )
        return cluster, healthy, degraded, repaired, repair, repair_time

    cluster, healthy, degraded, repaired, repair, repair_time = run_once(
        benchmark, run
    )

    print("\nRecovery overhead (Era-CE-CD, 256 KB values, 1 of 6 nodes down)")
    print(
        format_table(
            ["phase", "get_avg_us"],
            [
                ["healthy", healthy.avg_latency * 1e6],
                ["degraded (node down)", degraded.avg_latency * 1e6],
                ["after repair", repaired.avg_latency * 1e6],
            ],
        )
    )
    print(
        format_table(
            ["repaired_keys", "repaired_MiB", "repair_seconds",
             "MiB_per_sec"],
            [[
                repair.repaired_keys,
                repair.repaired_bytes / MIB,
                repair_time,
                repair.repaired_bytes / MIB / repair_time,
            ]],
        )
    )

    # degraded reads cost more than healthy ones ...
    assert degraded.avg_latency > healthy.avg_latency
    # ... and repair restores most of the lost latency
    assert repaired.avg_latency < degraded.avg_latency
    assert repaired.avg_latency < healthy.avg_latency * 1.2
    # every affected key was rebuilt
    source = KeyValueSource()
    affected = sum(
        1
        for i in range(NUM_KEYS)
        if "server-2"
        in cluster.scheme.placement(cluster.ring, source.key(i))
    )
    assert repair.repaired_keys == affected


def test_repair_cost_scales_with_value_size(benchmark):
    """Repair moves K reads + 1 write per lost chunk: cost tracks D."""

    def run():
        rows = []
        for size in (64 * KIB, 256 * KIB, MIB):
            cluster = build_cluster(
                scheme="era-ce-cd", servers=6, memory_per_server=4 * GIB
            )
            client = cluster.add_client()
            source = KeyValueSource()
            load_keys(cluster, client, 40, size, source)
            victim = "server-1"
            cluster.servers[victim].fail()
            repair = RepairManager(cluster, cluster.scheme)
            keys = [source.key(i) for i in range(40)]
            start = cluster.sim.now

            def do_repair():
                yield from repair.repair_server(victim, keys)

            cluster.sim.run(cluster.sim.process(do_repair()))
            rows.append(
                [size, repair.repaired_keys, cluster.sim.now - start]
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nRepair cost vs value size (40 keys, 1 of 6 nodes down)")
    print(format_table(["value_size", "repaired", "seconds"], rows))
    times = [r[2] for r in rows]
    assert times[0] < times[1] < times[2]


def test_online_workload_under_failure(benchmark):
    """Online-workload recovery view (paper future work: 'for both offline
    and online workloads'): YCSB-B throughput healthy vs with one node
    down, Era-CE-CD vs Async-Rep."""
    from repro.workloads.ycsb import YCSBSpec, run_ycsb

    spec = YCSBSpec(
        "ycsb-b", 0.95, 0.05, record_count=4_000, ops_per_client=100,
        value_size=32 * KIB,
    )

    def run():
        rows = []
        for scheme in ("async-rep", "era-ce-cd"):
            for failed in (0, 1):
                cluster = build_cluster(
                    scheme=scheme, servers=5, memory_per_server=8 * GIB
                )
                if failed:
                    # load first so the failure hits real data
                    from repro.workloads.ycsb import load_phase

                    load_phase(cluster, spec, loader_count=4)
                    cluster.fail_servers(["server-4"])
                    result = run_ycsb(
                        cluster, spec, num_clients=16, client_hosts=4,
                        load=False,
                    )
                else:
                    result = run_ycsb(
                        cluster, spec, num_clients=16, client_hosts=4,
                        loader_count=4,
                    )
                rows.append(
                    [scheme, failed, result.throughput,
                     result.read_latency.mean * 1e6]
                )
        return rows

    rows = run_once(benchmark, run)
    print("\nYCSB-B (95:5, 32 KB) with and without one failed server")
    print(
        format_table(
            ["scheme", "failed_nodes", "tput_ops_s", "read_us"], rows
        )
    )
    by = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    # both schemes keep serving through the failure ...
    assert by[("era-ce-cd", 1)][0] > 0.5 * by[("era-ce-cd", 0)][0]
    assert by[("async-rep", 1)][0] > 0.5 * by[("async-rep", 0)][0]
    # ... and a failure costs throughput for both
    assert by[("era-ce-cd", 1)][0] < by[("era-ce-cd", 0)][0]


def test_lrc_repair_vs_rs_repair(benchmark):
    """Paper future work realized: LRC cuts repair traffic.

    RS(6, 4) and LRC(6, 2, 2) have identical storage overhead (10/6 x);
    repairing one lost chunk under RS reads the whole value (K chunks),
    under LRC only the local group (K/L chunks + parity).
    """

    def run():
        rows = []
        for codec, label in (("rs_van", "RS(6,4)"), ("lrc", "LRC(6,2,2)")):
            cluster = build_cluster(
                scheme="era-ce-cd", servers=11, codec=codec, k=6, m=4,
                memory_per_server=4 * GIB,
            )
            client = cluster.add_client()
            source = KeyValueSource()
            load_keys(cluster, client, 60, 256 * KIB, source)
            victim = "server-1"
            cluster.servers[victim].fail()
            repair = RepairManager(cluster, cluster.scheme)
            keys = [source.key(i) for i in range(60)]
            start = cluster.sim.now

            def do_repair():
                yield from repair.repair_server(victim, keys)

            cluster.sim.run(cluster.sim.process(do_repair()))
            rows.append(
                [
                    label,
                    repair.repaired_keys,
                    repair.local_repairs,
                    repair.bytes_read_for_repair / MIB,
                    (cluster.sim.now - start) * 1e3,
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nRepair traffic: RS vs LRC at equal storage overhead")
    print(
        format_table(
            ["code", "repaired", "local_repairs", "read_MiB", "time_ms"],
            rows,
        )
    )
    rs, lrc = rows
    assert rs[2] == 0  # RS has no local repairs
    # data and local-parity chunks (8 of 10 indices) repair locally; lost
    # *global* parities still need the full decode path
    assert lrc[2] > 0.7 * lrc[1]
    # the headline: LRC reads roughly (group+1)/K of the bytes RS reads
    assert lrc[3] < rs[3] * 0.75
    assert lrc[4] < rs[4]
