"""Figure 8: OHB Set/Get latency micro-benchmarks on RI-QDR.

Five-server cluster, RS(3,2) vs Rep=3, single client, value sizes
512 B - 1 MB.  Panel (a) Set latency, (b) Get latency without failures,
(c) Get latency under two node failures (degraded reads).
"""

from conftest import FULL, run_once

from repro.harness import fig8_microbench, format_table
from repro.harness.experiments import MICRO_SIZES

NUM_OPS = 1000 if FULL else 200


def _print(rows, title):
    print("\n%s" % title)
    print(
        format_table(
            ["scheme", "op", "size_B", "avg_us", "p99_us"],
            [
                [r.scheme, r.op, r.value_size, r.avg_latency_us, r.p99_latency_us]
                for r in rows
            ],
        )
    )


def _series(rows, scheme, op):
    return {
        r.value_size: r.avg_latency_us
        for r in rows
        if r.scheme == scheme and r.op == op
    }


def test_fig8a_set_latency(benchmark):
    rows = run_once(
        benchmark, fig8_microbench, sizes=MICRO_SIZES, num_ops=NUM_OPS,
        ops_kind="set",
    )
    _print(rows, "Figure 8(a): Set latency (RI-QDR, 5 servers)")

    sync = _series(rows, "sync-rep", "set")
    async_rep = _series(rows, "async-rep", "set")
    era_ce = _series(rows, "era-ce-cd", "set")
    era_se = _series(rows, "era-se-cd", "set")
    for size in MICRO_SIZES:
        # paper: Era-CE-CD 1.6x-2.8x better than Sync-Rep
        assert era_ce[size] < sync[size] / 1.5, size
        # paper: Async-Rep overlaps replicas, beating Sync-Rep
        assert async_rep[size] < sync[size], size
    # paper: server-side encode wins for large values (up to ~38%)
    big = MICRO_SIZES[-1]
    assert era_se[big] < era_ce[big]


def test_fig8b_get_latency_no_failures(benchmark):
    rows = run_once(
        benchmark, fig8_microbench, sizes=MICRO_SIZES, num_ops=NUM_OPS,
        ops_kind="get",
    )
    _print(rows, "Figure 8(b): Get latency, no failures")
    rep = _series(rows, "async-rep", "get")
    era = _series(rows, "era-ce-cd", "get")
    for size in MICRO_SIZES[2:]:
        # paper: erasure get tracks Async-Rep when nothing has failed
        assert abs(era[size] - rep[size]) / rep[size] < 0.25, size


def test_fig8c_get_latency_two_failures(benchmark):
    rows = run_once(
        benchmark, fig8_microbench, sizes=MICRO_SIZES[3:], num_ops=NUM_OPS // 2,
        ops_kind="get", failed_servers=2,
        schemes=("sync-rep", "async-rep", "era-ce-cd", "era-se-cd", "era-se-sd"),
    )
    _print(rows, "Figure 8(c): Get latency, two node failures")
    rep = _series(rows, "async-rep", "get")
    era_cd = _series(rows, "era-ce-cd", "get")
    era_sd = _series(rows, "era-se-sd", "get")
    big = MICRO_SIZES[-1]
    # paper: degraded erasure reads cost more than replication failover
    # (~27% there; decode dominates here), and Era-SE-SD degrades worst
    # (~2.2x) because gather + decode both sit on the server path.
    assert era_cd[big] > rep[big]
    assert era_sd[big] > era_cd[big]
    assert era_sd[big] > 1.5 * rep[big]
