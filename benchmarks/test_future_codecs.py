"""Future-work codecs head-to-head (Section VIII).

The paper closes by naming the codes it wants next: "optimized erasure
codes such as locally repairable codes, linear time fountain codes".
Both are implemented here; this bench puts them beside the paper's chosen
RS-Vandermonde on the axes that matter — storage, guaranteed tolerance,
coding cost, and repair traffic — so the trade-offs the paper anticipates
are visible as numbers.
"""

from conftest import run_once

from repro.core.cluster import build_cluster
from repro.ec import make_codec
from repro.ec.cost_model import CodingCostModel
from repro.harness.reporting import format_table
from repro.resilience.recovery import RepairManager
from repro.workloads.keys import KeyValueSource
from repro.workloads.microbench import load_keys

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 ** 3

#: (codec, k, m, servers) — geometries with comparable roles
CONFIGS = (
    ("rs_van", 6, 4, 11),   # MDS baseline
    ("lrc", 6, 4, 11),      # 2 local + 2 global parities
    ("lt", 6, 4, 11),       # XOR-only fountain
)


def test_codec_tradeoff_table(benchmark):
    def run():
        model = CodingCostModel()
        rows = []
        for name, k, m, _servers in CONFIGS:
            codec = make_codec(name, k, m)
            rows.append(
                [
                    name,
                    codec.storage_overhead,
                    codec.tolerated_failures,
                    model.encode_time(name, MIB, k, m) * 1e6,
                    model.decode_time(name, MIB, k, m, 1) * 1e6,
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nFuture-work codecs at (k=6, m=4): the paper's Section VIII menu")
    print(
        format_table(
            ["codec", "storage_x", "guaranteed", "encode_us_1MB",
             "decode1_us_1MB"],
            rows,
        )
    )
    by = {r[0]: r for r in rows}
    # MDS RS: the only one turning all m parities into guaranteed failures
    assert by["rs_van"][2] == 4
    # LRC trades one guarantee for cheap local repair (maximally
    # recoverable: r + 1 = 3)
    assert by["lrc"][2] == 3
    # LT trades guarantees for the cheapest coding kernel
    assert by["lt"][2] >= 1
    assert by["lt"][3] < by["rs_van"][3]
    # all three store the same bytes at this geometry
    assert by["rs_van"][1] == by["lrc"][1] == by["lt"][1]


def test_repair_traffic_across_codecs(benchmark):
    """Repair one failed node's chunks under each codec."""

    def run():
        rows = []
        for name, k, m, servers in CONFIGS:
            cluster = build_cluster(
                scheme="era-ce-cd", servers=servers, codec=name, k=k, m=m,
                memory_per_server=4 * GIB,
            )
            client = cluster.add_client()
            source = KeyValueSource()
            load_keys(cluster, client, 40, 256 * KIB, source)
            victim = "server-2"
            cluster.servers[victim].fail()
            repair = RepairManager(cluster, cluster.scheme)
            start = cluster.sim.now

            def do_repair():
                yield from repair.repair_server(
                    victim, [source.key(i) for i in range(40)]
                )

            cluster.sim.run(cluster.sim.process(do_repair()))
            rows.append(
                [
                    name,
                    repair.repaired_keys,
                    repair.local_repairs,
                    repair.bytes_read_for_repair / MIB,
                    (cluster.sim.now - start) * 1e3,
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nRepairing one failed node (40 keys x 256 KB):")
    print(
        format_table(
            ["codec", "repaired", "local", "read_MiB", "time_ms"], rows
        )
    )
    by = {r[0]: r for r in rows}
    # only LRC has a local-repair path; it must cut the bytes read
    assert by["lrc"][2] > 0
    assert by["rs_van"][2] == 0 and by["lt"][2] == 0
    assert by["lrc"][3] < by["rs_van"][3]
