"""Figure 11: YCSB average read/write latencies (workloads A and B).

Panel (a): SDSC-Comet (FDR + Haswell); panel (b): RI2-EDR (EDR +
Broadwell).  150 clients on 10 hosts at full scale; Zipfian skew.
"""

from conftest import FULL, run_once

from repro.harness import fig11_12_ycsb, format_table

KIB = 1024

if FULL:
    PARAMS = dict(num_clients=150, client_hosts=10, record_count=250_000,
                  ops_per_client=2_500)
    SIZES = (1 * KIB, 4 * KIB, 16 * KIB, 32 * KIB)
else:
    PARAMS = dict(num_clients=30, client_hosts=10, record_count=8_000,
                  ops_per_client=120)
    SIZES = (4 * KIB, 32 * KIB)

SCHEMES = ("async-rep", "era-ce-cd", "era-se-cd")


def _print(rows, title):
    print("\n%s" % title)
    print(
        format_table(
            ["workload", "scheme", "size_B", "read_us", "write_us"],
            [
                [r.workload, r.scheme, r.value_size, r.read_mean_us,
                 r.write_mean_us]
                for r in rows
            ],
        )
    )


def _row(rows, **filters):
    return next(
        r
        for r in rows
        if all(getattr(r, k) == v for k, v in filters.items())
    )


def test_fig11a_latency_sdsc_comet(benchmark):
    rows = run_once(
        benchmark, fig11_12_ycsb, profile="sdsc-comet", value_sizes=SIZES,
        schemes=SCHEMES, **PARAMS
    )
    _print(rows, "Figure 11(a): YCSB latencies on SDSC-Comet")

    big = SIZES[-1]
    for workload in ("ycsb-a", "ycsb-b"):
        era = _row(rows, scheme="era-ce-cd", workload=workload, value_size=big)
        rep = _row(rows, scheme="async-rep", workload=workload, value_size=big)
        # paper: up to 2.3x lower read/write latency for >16 KB values
        assert era.read_mean_us < rep.read_mean_us
        assert era.write_mean_us < rep.write_mean_us


def test_fig11b_latency_ri2_edr(benchmark):
    rows = run_once(
        benchmark, fig11_12_ycsb, profile="ri2-edr", value_sizes=(SIZES[-1],),
        schemes=("async-rep", "era-ce-cd"), **PARAMS
    )
    _print(rows, "Figure 11(b): YCSB latencies on RI2-EDR")
    era = _row(rows, scheme="era-ce-cd", workload="ycsb-a")
    rep = _row(rows, scheme="async-rep", workload="ycsb-a")
    # paper: the EDR cluster amplifies the gap (over 2.6x there)
    assert era.write_mean_us < rep.write_mean_us
