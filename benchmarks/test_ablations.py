"""Ablations: quantify the design choices the paper argues qualitatively.

Not figures from the paper — these isolate the mechanisms behind them:

- the ARPE send window (how much overlap buys, Section IV-A);
- the 16 KB eager/rendezvous threshold (Section VI-C's explanation for
  the >16 KB YCSB crossover);
- RS(K, M) geometry (storage efficiency vs. chunk-count overhead);
- the codec choice inside the full system (Figure 4's conclusion,
  validated end-to-end);
- the future-work hybrid replication/erasure scheme on a mixed-size
  workload.
"""

from dataclasses import replace

from conftest import run_once

from repro.core.cluster import build_cluster
from repro.harness.reporting import format_table
from repro.network.profiles import RI_QDR
from repro.workloads.microbench import run_set_benchmark

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 ** 3
NUM_OPS = 200


def _set_latency(cluster, window, size, num_ops=NUM_OPS):
    client = cluster.add_client(window=window)
    result = run_set_benchmark(
        cluster, client, num_ops=num_ops, value_size=size
    )
    return result.avg_latency * 1e6


def test_ablation_arpe_window(benchmark):
    """The ARPE's request overlap is what hides T_encode."""

    def run():
        rows = []
        for window in (1, 2, 4, 8, 16):
            cluster = build_cluster(
                scheme="era-ce-cd", servers=5, memory_per_server=4 * GIB
            )
            rows.append([window, _set_latency(cluster, window, 256 * KIB)])
        return rows

    rows = run_once(benchmark, run)
    print("\nAblation: ARPE window vs Era-CE-CD Set latency (256 KB)")
    print(format_table(["window", "set_avg_us"], rows))
    latencies = [r[1] for r in rows]
    # monotone improvement, saturating: window=4 must capture most of it
    assert latencies[2] < latencies[0] / 1.5
    assert latencies[-1] <= latencies[0]


def test_ablation_eager_threshold(benchmark):
    """Era-CE-CD's >16 KB YCSB win rests on chunks dropping below the
    eager/rendezvous switch; removing the protocol split removes most of
    the small-chunk advantage."""

    def run():
        rows = []
        for threshold, label in (
            (0, "all-rendezvous"),
            (16 * KIB, "paper-16K"),
            (64 * MIB, "all-eager"),
        ):
            profile = replace(RI_QDR, eager_threshold=threshold)
            era = build_cluster(
                profile=profile, scheme="era-ce-cd", servers=5,
                memory_per_server=4 * GIB,
            )
            rep = build_cluster(
                profile=profile, scheme="async-rep", servers=5,
                memory_per_server=4 * GIB,
            )
            size = 32 * KIB  # chunks ~10.9 KB: under 16K, over 0
            # window=1: per-op latency, where the handshake is visible
            rows.append(
                [
                    label,
                    _set_latency(era, 1, size),
                    _set_latency(rep, 1, size),
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nAblation: eager threshold, 32 KB values (era chunks ~10.9 KB)")
    print(format_table(["threshold", "era_set_us", "asyncrep_set_us"], rows))
    by_label = {r[0]: (r[1], r[2]) for r in rows}
    # with the paper's 16K switch era rides eager while async-rep pays the
    # rendezvous handshake; removing the split (either way) shrinks the
    # absolute gap between the two schemes
    gap = {label: rep - era for label, (era, rep) in by_label.items()}
    assert gap["paper-16K"] > gap["all-eager"]
    assert gap["paper-16K"] > gap["all-rendezvous"]
    # era itself must be faster under the paper's threshold than when
    # forced through rendezvous for every chunk
    assert by_label["paper-16K"][0] < by_label["all-rendezvous"][0]


def test_ablation_rs_geometry(benchmark):
    """RS(K, M): more data chunks -> better storage efficiency but more
    requests per operation."""

    def run():
        rows = []
        for k, m, servers in ((2, 1, 3), (3, 2, 5), (4, 2, 6), (6, 3, 9)):
            cluster = build_cluster(
                scheme="era-ce-cd", servers=servers, k=k, m=m,
                memory_per_server=4 * GIB,
            )
            rows.append(
                [
                    "RS(%d,%d)" % (k, m),
                    cluster.scheme.storage_overhead,
                    cluster.scheme.tolerated_failures,
                    _set_latency(cluster, 4, 256 * KIB),
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nAblation: RS(K,M) geometry, 256 KB Set")
    print(
        format_table(
            ["code", "storage_x", "tolerates", "set_avg_us"], rows
        )
    )
    overheads = [r[1] for r in rows]
    assert overheads[0] == 1.5 and abs(overheads[3] - 1.5) < 1e-9
    # wider stripes move fewer parity bytes per op: RS(6,3) latency must
    # not exceed RS(2,1)'s despite tolerating 3x the failures
    assert rows[3][3] <= rows[0][3] * 1.1


def test_ablation_codec_in_system(benchmark):
    """Figure 4's ranking must survive end-to-end system integration."""

    def run():
        rows = []
        for codec in ("rs_van", "crs", "r6_lib"):
            cluster = build_cluster(
                scheme="era-ce-cd", servers=5, codec=codec,
                memory_per_server=4 * GIB,
            )
            client = cluster.add_client(window=1)  # expose coding time
            result = run_set_benchmark(
                cluster, client, num_ops=NUM_OPS, value_size=MIB
            )
            rows.append([codec, result.avg_latency * 1e6,
                         result.breakdown.encode * 1e6])
        return rows

    rows = run_once(benchmark, run)
    print("\nAblation: codec choice inside Era-CE-CD (1 MB Set, window=1)")
    print(format_table(["codec", "set_avg_us", "encode_us"], rows))
    by_codec = {r[0]: r[1] for r in rows}
    assert by_codec["rs_van"] < by_codec["crs"]
    assert by_codec["rs_van"] < by_codec["r6_lib"]


def test_ablation_hybrid_scheme(benchmark):
    """Future work (Section VIII): hybrid replication/erasure should act
    like replication for small values and erasure for large ones."""
    from repro.common.payload import Payload

    def run():
        rows = []
        for scheme in ("async-rep", "era-ce-cd", "hybrid"):
            cluster = build_cluster(
                scheme=scheme, servers=5, memory_per_server=4 * GIB
            )
            client = cluster.add_client(window=4)

            def body():
                # mixed workload: 50 small (2 KB) + 50 large (256 KB)
                handles = []
                for i in range(50):
                    handles.append(
                        client.iset("s%03d" % i, Payload.sized(2 * KIB))
                    )
                    handles.append(
                        client.iset("l%03d" % i, Payload.sized(256 * KIB))
                    )
                yield client.wait(handles)

            start = cluster.sim.now
            cluster.sim.run(cluster.sim.process(body()))
            elapsed = cluster.sim.now - start
            rows.append(
                [scheme, elapsed * 1e3, cluster.total_stored_bytes / MIB]
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nAblation: hybrid scheme on a mixed 2 KB / 256 KB workload")
    print(format_table(["scheme", "elapsed_ms", "stored_MiB"], rows))
    by_scheme = {r[0]: (r[1], r[2]) for r in rows}
    # storage: hybrid must sit near pure erasure (large values dominate
    # bytes), clearly below replication
    assert by_scheme["hybrid"][1] < by_scheme["async-rep"][1] * 0.75
