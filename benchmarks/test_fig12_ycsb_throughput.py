"""Figure 12: YCSB aggregated throughput (workloads A and B).

Panels (a)/(b): SDSC-Comet with the IPoIB and RDMA no-replication
baselines; panel (c): RI2-EDR.
"""

from conftest import FULL, run_once

from repro.harness import fig11_12_ycsb, format_table

KIB = 1024

if FULL:
    PARAMS = dict(num_clients=150, client_hosts=10, record_count=250_000,
                  ops_per_client=2_500)
    SIZES = (1 * KIB, 4 * KIB, 16 * KIB, 32 * KIB)
else:
    PARAMS = dict(num_clients=30, client_hosts=10, record_count=8_000,
                  ops_per_client=120)
    SIZES = (4 * KIB, 32 * KIB)

SCHEMES = ("no-rep-ipoib", "no-rep", "async-rep", "era-ce-cd", "era-se-cd")


def _print(rows, title):
    print("\n%s" % title)
    print(
        format_table(
            ["workload", "scheme", "size_B", "tput_ops_s"],
            [
                [r.workload, r.scheme, r.value_size, r.throughput_ops]
                for r in rows
            ],
        )
    )


def _row(rows, **filters):
    return next(
        r
        for r in rows
        if all(getattr(r, k) == v for k, v in filters.items())
    )


def test_fig12ab_throughput_sdsc_comet(benchmark):
    rows = run_once(
        benchmark, fig11_12_ycsb, profile="sdsc-comet", value_sizes=SIZES,
        schemes=SCHEMES, **PARAMS
    )
    _print(rows, "Figure 12(a)/(b): YCSB throughput on SDSC-Comet")

    big = SIZES[-1]
    # 50:50 update-heavy: paper reports Era-CE-CD >= 1.34x over Async-Rep
    era = _row(rows, scheme="era-ce-cd", workload="ycsb-a", value_size=big)
    rep = _row(rows, scheme="async-rep", workload="ycsb-a", value_size=big)
    ipoib = _row(rows, scheme="no-rep-ipoib", workload="ycsb-a", value_size=big)
    norep = _row(rows, scheme="no-rep", workload="ycsb-a", value_size=big)
    assert era.throughput_ops > 1.2 * rep.throughput_ops
    # paper: 1.9x-3.01x over Memcached-IPoIB without replication
    assert era.throughput_ops > 1.5 * ipoib.throughput_ops
    # RDMA no-replication remains the upper bound
    assert norep.throughput_ops >= era.throughput_ops * 0.95

    # 95:5 read-heavy: Era performs on par with Async-Rep
    era_b = _row(rows, scheme="era-ce-cd", workload="ycsb-b", value_size=big)
    rep_b = _row(rows, scheme="async-rep", workload="ycsb-b", value_size=big)
    assert era_b.throughput_ops > 0.9 * rep_b.throughput_ops


def test_fig12c_throughput_ri2_edr(benchmark):
    rows = run_once(
        benchmark, fig11_12_ycsb, profile="ri2-edr", value_sizes=(SIZES[-1],),
        schemes=("async-rep", "era-ce-cd", "era-se-cd"), **PARAMS
    )
    _print(rows, "Figure 12(c): YCSB throughput on RI2-EDR")
    era = _row(rows, scheme="era-ce-cd", workload="ycsb-a")
    rep = _row(rows, scheme="async-rep", workload="ycsb-a")
    # paper: ~1.59x on the EDR cluster for the update-heavy mix
    assert era.throughput_ops > 1.2 * rep.throughput_ops
