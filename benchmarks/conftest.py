"""Shared benchmark configuration.

Every benchmark reproduces one of the paper's figures.  The simulations
are deterministic, so each bench runs exactly once (``pedantic`` with one
round); the *measured quantity* is the experiment's virtual-time result,
printed as a paper-style table, while pytest-benchmark records the
harness's wall-clock cost.

Set ``REPRO_BENCH_SCALE=full`` to run the paper's full parameters
(hundreds of clients, 250K records, 10-40 GB I/O phases) instead of the
CI-sized defaults.  Shapes — who wins, by what factor — are the same.
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"


@pytest.fixture(scope="session")
def bench_scale():
    return "full" if FULL else "ci"


def run_once(benchmark, fn, *args, **kwargs):
    """Execute a deterministic experiment exactly once under benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
