"""Wall-clock throughput of the harness itself (pytest-benchmark view).

Each test wraps one section of :mod:`repro.harness.perfbench` so the
pytest-benchmark machinery records wall-clock cost, while the section's
own higher-is-better metrics (MB/s, events/sec, ops/sec) are attached as
``benchmark.extra_info`` for the JSON export.

Run::

    PYTHONPATH=src python -m pytest benchmarks/perf -q
    REPRO_BENCH_SCALE=full PYTHONPATH=src python -m pytest benchmarks/perf

The CLI twin — ``python -m repro.harness bench`` — runs the same suite
without pytest and writes ``BENCH_perf.json``.
"""

import pytest

from repro.harness import perfbench


def _run_section(benchmark, fn, quick):
    metrics = benchmark.pedantic(
        fn, args=(quick,), rounds=1, iterations=1
    )
    for key, value in metrics.items():
        benchmark.extra_info[key] = round(value, 2)
    return metrics


def test_codec_kernels(benchmark, quick):
    metrics = _run_section(benchmark, perfbench.bench_codecs, quick)
    # the acceptance headline geometry must be present and non-trivial
    assert metrics["encode_mbps/rs_van_k4_m2_1mib"] > 0
    assert metrics["decode_mbps/rs_van_k4_m2_1mib"] > 0


def test_simulation_engine(benchmark, quick):
    metrics = _run_section(benchmark, perfbench.bench_engine, quick)
    assert metrics["engine_events_per_sec"] > 0


def test_fig8_harness(benchmark, quick):
    metrics = _run_section(benchmark, perfbench.bench_fig8, quick)
    assert metrics["fig8_ops_per_sec"] > 0


def test_batched_client_ops(benchmark, quick):
    metrics = _run_section(benchmark, perfbench.bench_batch_ops, quick)
    if not metrics:
        pytest.skip("tree predates multi_set/multi_get")
    assert metrics["batch_ops_per_sec"] > 0


def test_scale_out(benchmark, quick):
    metrics = _run_section(benchmark, perfbench.bench_scale, quick)
    if not metrics:
        pytest.skip("tree predates repro.membership")
    assert metrics["scale_moves_per_sec"] > 0
    # the run's own durability/throttle/latency gates must all hold
    assert metrics["scale_invariants_ok_info"] == 1.0
