"""Wall-clock perf-suite configuration.

Unlike the figure benchmarks one directory up (which measure *virtual
time* inside the simulation), this package measures the harness itself:
real seconds, real bytes, real event-loop iterations.  The suite mirrors
``python -m repro.harness bench`` so CI and local runs report the same
metrics.

``REPRO_BENCH_SCALE=full`` switches from the quick CI calibration to the
longer measurement windows used for committed ``BENCH_perf.json`` runs.
"""

import os

import pytest

QUICK = os.environ.get("REPRO_BENCH_SCALE", "").lower() != "full"


@pytest.fixture(scope="session")
def quick():
    return QUICK
