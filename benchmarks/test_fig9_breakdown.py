"""Figure 9: client-side time-wise breakdown (Request / Wait / Encode /
Decode) for Set (healthy) and Get (two failures), 64 KB - 1 MB."""

from conftest import FULL, run_once

from repro.harness import fig9_breakdown, format_table

KIB = 1024
MIB = 1024 * 1024
SIZES = (64 * KIB, 256 * KIB, MIB)
NUM_OPS = 500 if FULL else 150


def test_fig9_phase_breakdown(benchmark):
    rows = run_once(benchmark, fig9_breakdown, sizes=SIZES, num_ops=NUM_OPS)

    print("\nFigure 9: per-op phase times (us), RI-QDR")
    print(
        format_table(
            ["scheme", "op", "size_B", "request_us", "wait_us", "encode_us",
             "decode_us"],
            [
                [r.scheme, r.op, r.value_size, r.request_us, r.wait_us,
                 r.encode_us, r.decode_us]
                for r in rows
            ],
        )
    )

    def row(scheme, op, size):
        return next(
            r for r in rows
            if r.scheme == scheme and r.op == op and r.value_size == size
        )

    for size in SIZES:
        ce_set = row("era-ce-cd", "set", size)
        se_set = row("era-se-cd", "set", size)
        # encode shows at the client only for CE; SE offloads it entirely
        assert ce_set.encode_us > 0
        assert se_set.encode_us == 0
        # paper: for Get under failures the wait phase dominates
        ce_get = row("era-ce-cd", "get", size)
        assert ce_get.wait_us > ce_get.request_us
        assert ce_get.decode_us > 0  # degraded reads decode at the client
        # replication never pays coding time
        rep_set = row("async-rep", "set", size)
        assert rep_set.encode_us == 0 and rep_set.decode_us == 0

    # paper: T_encode grows much more significant at larger value sizes
    assert row("era-ce-cd", "set", MIB).encode_us > row(
        "era-ce-cd", "set", 64 * KIB
    ).encode_us * 5
