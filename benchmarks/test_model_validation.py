"""Section III model validation: Equations 1-8 vs the simulator.

The paper derives its design from closed-form latency models.  This bench
runs single blocking operations in the simulator and checks that each
lands between the model's overlapped ideal (Eqs. 6-8) and a generous
multiple of its sequential bound (Eqs. 2-5) — i.e. the simulator is
faithful to the math the paper reasons with.
"""

from conftest import run_once

from repro.common.payload import Payload
from repro.core.cluster import build_cluster
from repro.harness.reporting import format_table
from repro.model import LatencyModel
from repro.network.profiles import RI_QDR

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 ** 3
SIZES = (4 * KIB, 64 * KIB, MIB)


def _single_op_time(scheme, op, size):
    cluster = build_cluster(
        scheme=scheme, servers=5, memory_per_server=4 * GIB
    )
    client = cluster.add_client(window=1)

    def body():
        yield from client.set("key", Payload.sized(size))

    cluster.sim.run(cluster.sim.process(body()))
    set_time = cluster.sim.now
    if op == "set":
        return set_time
    start = cluster.sim.now

    def read():
        yield from client.get("key")

    cluster.sim.run(cluster.sim.process(read()))
    return cluster.sim.now - start


def test_model_vs_simulation(benchmark):
    model = LatencyModel(RI_QDR)

    def run():
        rows = []
        for size in SIZES:
            sync_set = _single_op_time("sync-rep", "set", size)
            async_set = _single_op_time("async-rep", "set", size)
            era_set = _single_op_time("era-ce-cd", "set", size)
            rep_get = _single_op_time("async-rep", "get", size)
            era_get = _single_op_time("era-ce-cd", "get", size)
            rows.append(
                [
                    size,
                    model.sync_rep_set(size, 3) * 1e6, sync_set * 1e6,
                    model.era_set_overlapped(size, 3, 2) * 1e6, era_set * 1e6,
                    model.rep_get(size) * 1e6, rep_get * 1e6,
                ]
            )
            # Eq 2 bound: the simulator adds response trips/software, so
            # sync-rep sits above the pure one-way model but within 3x
            assert model.sync_rep_set(size, 3) < sync_set
            assert sync_set < 3 * model.sync_rep_set(size, 3) + 60e-6
            # Eq 6: the overlapped replication set must land between the
            # single-NIC ideal (L + F*D/B) and that ideal plus bounded
            # software/response costs; and it always beats blocking mode
            ideal = model.async_rep_set(size, 3)
            assert ideal < async_set < ideal * 1.25 + 25e-6
            assert async_set < sync_set
            assert era_set < model.era_set(size, 3, 2) + 30e-6
            # Eq 7 ideal is a floor for the erasure set
            assert era_set > model.era_set_overlapped(size, 3, 2)
            # Eq 4/8: gets bounded below by one Response-Wait
            assert rep_get > model.rep_get(size)
            assert era_get > model.era_get_overlapped(size, 3, 2, erased=0)
        return rows

    rows = run_once(benchmark, run)
    print("\nModel (Eq. 1-8) vs simulation, single blocking ops (us)")
    print(
        format_table(
            ["size", "eq2_sync_set", "sim_sync_set", "eq7_era_ideal",
             "sim_era_set", "eq4_rep_get", "sim_rep_get"],
            rows,
        )
    )


def test_storage_efficiency_model(benchmark):
    """Section I-A: N/K vs F storage overhead, validated against actual
    cluster accounting."""

    def run():
        model = LatencyModel(RI_QDR)
        cluster_rep = build_cluster(
            scheme="async-rep", servers=5, memory_per_server=4 * GIB
        )
        cluster_era = build_cluster(
            scheme="era-ce-cd", servers=5, memory_per_server=4 * GIB
        )
        for cluster in (cluster_rep, cluster_era):
            client = cluster.add_client()

            def body(client=client):
                for i in range(20):
                    yield from client.set("k%d" % i, Payload.sized(MIB))

            cluster.sim.run(cluster.sim.process(body()))
        return model, cluster_rep, cluster_era

    model, cluster_rep, cluster_era = run_once(benchmark, run)
    measured_gain = (
        cluster_rep.total_stored_bytes / cluster_era.total_stored_bytes
    )
    predicted_gain = model.storage_efficiency_gain(3, 3, 2)
    print(
        "\nStorage efficiency: predicted %.2fx, measured %.2fx"
        % (predicted_gain, measured_gain)
    )
    assert abs(measured_gain - predicted_gain) / predicted_gain < 0.05
