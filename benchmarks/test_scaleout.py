"""Scale-out study — paper future work: "larger-scale Memcached workloads".

Section VIII plans evaluation at larger scale.  This bench grows the
server cluster (5 -> 10 -> 15 nodes, widening RS(K, M) proportionally so
the storage overhead stays ~5/3x) with a proportional client population
and checks that the erasure-coded store actually scales: aggregate YCSB
throughput must grow close to linearly with the cluster, and the
advantage over replication must persist at every size.
"""

from conftest import run_once

from repro.core.cluster import build_cluster
from repro.harness.reporting import format_table
from repro.workloads.ycsb import YCSBSpec, run_ycsb

KIB = 1024
GIB = 1024 ** 3

#: (servers, k, m, clients) — storage overhead stays within [1.5x, 1.67x]
SCALES = ((5, 3, 2, 15), (10, 6, 4, 30), (15, 9, 6, 45))


def test_scaleout_throughput(benchmark):
    spec = YCSBSpec(
        "ycsb-a", 0.5, 0.5, record_count=6_000, ops_per_client=120,
        value_size=32 * KIB,
    )

    def run():
        rows = []
        for servers, k, m, clients in SCALES:
            for scheme in ("async-rep", "era-ce-cd"):
                cluster = build_cluster(
                    scheme=scheme, servers=servers, k=k, m=m,
                    memory_per_server=8 * GIB,
                )
                result = run_ycsb(
                    cluster, spec, num_clients=clients,
                    client_hosts=max(5, clients // 3),
                )
                rows.append(
                    [servers, scheme, clients, result.throughput,
                     cluster.stats()["load_imbalance"]]
                )
        return rows

    rows = run_once(benchmark, run)
    print("\nScale-out: YCSB-A (32 KB) as the cluster grows")
    print(
        format_table(
            ["servers", "scheme", "clients", "tput_ops_s", "imbalance"],
            rows,
        )
    )
    era = {r[0]: r[3] for r in rows if r[1] == "era-ce-cd"}
    rep = {r[0]: r[3] for r in rows if r[1] == "async-rep"}
    # throughput grows with the cluster ...
    assert era[5] < era[10] < era[15]
    assert rep[5] < rep[10] < rep[15]
    # ... near-linearly for the erasure store (>= 70% scaling efficiency)
    assert era[15] > 2.1 * era[5]
    # ... and the erasure advantage holds at every scale
    for servers in (5, 10, 15):
        assert era[servers] > rep[servers]
