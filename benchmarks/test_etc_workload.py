"""ETC-style realistic cache workload (paper motivation, reference [17]).

The paper motivates online erasure coding with Facebook's workload
analysis: cached database queries span 512 B - 32 KB with a heavy tail.
This bench runs an ETC-shaped dataset (Zipfian keys, 30:1 GET:SET,
Pareto-tailed sizes) across the resilience schemes and evaluates the
future-work hybrid scheme exactly where it is meant to shine: the tail
carries the bytes, the head carries the requests.
"""

from conftest import run_once

from repro.core.cluster import build_cluster
from repro.harness.reporting import format_table
from repro.workloads.etc import EtcSizeSampler, EtcSpec, run_etc

GIB = 1024 ** 3
MIB = 1024 * 1024

SPEC = EtcSpec(record_count=4_000, ops_per_client=150)
SCHEMES = ("no-rep", "async-rep", "era-ce-cd", "hybrid")


def test_etc_schemes(benchmark):
    def run():
        rows = []
        for scheme in SCHEMES:
            cluster = build_cluster(
                scheme=scheme, servers=5, memory_per_server=4 * GIB
            )
            result = run_etc(cluster, SPEC, num_clients=12, client_hosts=4)
            rows.append(
                [
                    scheme,
                    result.throughput,
                    result.get_latency.mean * 1e6,
                    result.stored_bytes / MIB,
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nETC workload (Zipfian, 30:1 GET:SET, Pareto-tailed sizes)")
    print(
        format_table(
            ["scheme", "tput_ops_s", "get_mean_us", "stored_MiB"], rows
        )
    )
    by = {r[0]: r for r in rows}

    # GET-heavy small-value traffic: hybrid's latency must track
    # replication's (within 20%), far from pure erasure's per-chunk costs
    assert by["hybrid"][2] < by["era-ce-cd"][2]
    assert by["hybrid"][2] < by["async-rep"][2] * 1.25

    # ... while the storage bill reflects erasure coding of the byte-heavy
    # tail: meaningfully below replication
    assert by["hybrid"][3] < by["async-rep"][3] * 0.90
    assert by["no-rep"][3] < by["hybrid"][3]


def test_etc_size_distribution_shape(benchmark):
    """Sanity-print the distribution the bench runs on."""

    def run():
        sampler = EtcSizeSampler(seed=9)
        return sorted(sampler.sample_sizes(20_000))

    sizes = run_once(benchmark, run)
    total = sum(sizes)
    big = [s for s in sizes if s > 16 * 1024]
    rows = [
        ["median_B", sizes[len(sizes) // 2]],
        ["p99_B", sizes[int(len(sizes) * 0.99)]],
        ["max_B", sizes[-1]],
        ["frac_above_16K_%", 100.0 * len(big) / len(sizes)],
        ["bytes_share_above_16K_%", 100.0 * sum(big) / total],
    ]
    print("\nETC value-size distribution")
    print(format_table(["metric", "value"], rows))
    # the head dominates counts, the tail dominates bytes
    assert sizes[len(sizes) // 2] < 2_000
    assert sum(big) > 0.25 * total
