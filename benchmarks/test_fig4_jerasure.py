"""Figure 4: Jerasure coding-time study (RS_Van vs CRS vs R6-Lib).

Regenerates both panels: (a) encode times, (b) decode times for one and
two node failures, for key-value pair sizes 512 B - 1 MB with RS(3,2) on
the RI-QDR (Westmere) CPU profile.
"""

from conftest import run_once

from repro.harness import fig4_jerasure, format_table

SIZES = (512, 1024, 4096, 16384, 65536, 262144, 1048576)


def test_fig4_encode_decode_times(benchmark):
    rows = run_once(benchmark, fig4_jerasure, sizes=SIZES)

    print("\nFigure 4(a)+(b): coding time (us), RS(3,2), Westmere profile")
    print(
        format_table(
            ["scheme", "size_B", "encode_us", "decode_1fail_us", "decode_2fail_us"],
            [
                [r.scheme, r.value_size, r.encode_us, r.decode1_us, r.decode2_us]
                for r in rows
            ],
        )
    )

    # Paper's conclusion: RS_Van is best across the whole KV-pair range.
    for size in SIZES:
        best = min(
            (r for r in rows if r.value_size == size),
            key=lambda r: r.encode_us,
        )
        assert best.scheme == "rs_van"


def test_fig4_crossover_at_large_objects(benchmark):
    """Beyond the paper's range, CRS/Liberation win (their design point)."""
    rows = run_once(benchmark, fig4_jerasure, sizes=(256 * 1024 * 1024,))
    by_scheme = {r.scheme: r for r in rows}
    assert by_scheme["crs"].encode_us < by_scheme["rs_van"].encode_us
    assert by_scheme["r6_lib"].encode_us < by_scheme["rs_van"].encode_us
