"""Figure 10: memory efficiency of Era-RS(3,2) vs Async-Rep=3.

1-40 concurrent clients each write 1K x 1 MB values into a 5-server
cluster (20 GB per server at full scale).  Replication demands 3x the
user bytes and saturates the aggregate memory with data loss; erasure
coding demands 5/3x and fits comfortably (~56-67%).
"""

from conftest import FULL, run_once

from repro.harness import fig10_memory, format_table

CLIENTS = (1, 8, 16, 24, 32, 40)
SCALE = 1.0 if FULL else 0.04


def test_fig10_memory_efficiency(benchmark):
    rows = run_once(
        benchmark, fig10_memory, client_counts=CLIENTS, scale=SCALE
    )

    print("\nFigure 10: %% aggregated memory used (scale=%s)" % SCALE)
    print(
        format_table(
            ["scheme", "clients", "mem_used_pct", "lost_MB"],
            [
                [r.scheme, r.num_clients, r.memory_utilization * 100,
                 r.lost_bytes / 1e6]
                for r in rows
            ],
        )
    )

    def row(scheme, clients):
        return next(
            r for r in rows
            if r.scheme == scheme and r.num_clients == clients
        )

    for clients in CLIENTS:
        rep = row("async-rep", clients)
        era = row("era-ce-cd", clients)
        # erasure always needs fewer bytes for the same user data
        assert era.memory_utilization <= rep.memory_utilization + 1e-9

    # paper: 40 clients -> Async-Rep at 100% with ~GBs of data loss,
    # Era at roughly half the memory with zero loss (1.8x savings)
    rep40, era40 = row("async-rep", 40), row("era-ce-cd", 40)
    assert rep40.memory_utilization > 0.97
    assert rep40.lost_bytes > 0
    assert era40.lost_bytes == 0
    assert era40.memory_utilization < 0.75
    savings = rep40.memory_utilization / era40.memory_utilization
    assert savings > 1.4  # paper reports about 1.8x
