#!/usr/bin/env python
"""Hybrid resilience on a realistic cache mix (paper future work).

The paper motivates its work with Facebook's Memcached analysis (its
reference [17]): real cache values are mostly tiny, but a heavy tail
carries most of the bytes.  Section VIII then proposes *hybrid*
erasure-coding/replication "for different workload data access patterns".

This example runs that exact evaluation: an ETC-shaped workload (Zipfian
keys, 30:1 GET:SET, Pareto-tailed sizes) against pure replication, pure
erasure coding, and the hybrid scheme that replicates values <= 16 KB and
erasure-codes the tail.

Run:  python examples/etc_hybrid_cache.py
"""

from repro import build_cluster
from repro.harness.reporting import format_table
from repro.workloads.etc import EtcSizeSampler, EtcSpec, run_etc

GIB = 1024 ** 3
MIB = 1024 * 1024


def main():
    spec = EtcSpec(record_count=5_000, ops_per_client=200)
    sizes = EtcSizeSampler(spec.size_seed).sample_sizes(spec.record_count)
    big = [s for s in sizes if s > 16 * 1024]
    print(
        "ETC dataset: %d keys, median %d B; %.1f%% of keys are >16 KiB"
        " yet hold %.0f%% of the bytes\n"
        % (
            len(sizes),
            sorted(sizes)[len(sizes) // 2],
            100.0 * len(big) / len(sizes),
            100.0 * sum(big) / sum(sizes),
        )
    )

    rows = []
    for scheme in ("async-rep", "era-ce-cd", "hybrid"):
        cluster = build_cluster(
            scheme=scheme, servers=5, memory_per_server=4 * GIB
        )
        result = run_etc(cluster, spec, num_clients=15, client_hosts=5)
        stats = cluster.stats()
        rows.append(
            [
                scheme,
                result.get_latency.mean * 1e6,
                result.get_latency.p99 * 1e6,
                result.stored_bytes / MIB,
                stats["load_imbalance"],
            ]
        )

    print(
        format_table(
            ["scheme", "get_mean_us", "get_p99_us", "stored_MiB",
             "load_imbalance"],
            rows,
        )
    )
    print(
        "\nhybrid = replication's single-RTT gets for the hot small keys"
        "\n       + erasure coding's memory bill for the byte-heavy tail."
    )


if __name__ == "__main__":
    main()
