#!/usr/bin/env python
"""Failure lifecycle: crash, degraded service, background repair.

Walks the full resilience story on a 6-node Era-CE-CD cluster:

1. load 100 documents;
2. crash a server — reads keep working but pay the decode (degraded);
3. run the background RepairManager, which rebuilds every chunk the dead
   node held onto a substitute node;
4. show latency returning to normal, then survive two *more* failures —
   fault tolerance was genuinely restored.

Run:  python examples/failure_and_repair.py
"""

from repro import Payload, build_cluster
from repro.resilience import RepairManager
from repro.workloads.keys import KeyValueSource

GIB = 1024 ** 3
NUM_DOCS = 100
DOC_SIZE = 128 * 1024


def measure_reads(cluster, client, source, label):
    latencies = []

    def body():
        for i in range(NUM_DOCS):
            start = cluster.sim.now
            value = yield from client.get(source.key(i))
            assert value is not None, "lost %s during %s" % (
                source.key(i), label)
            latencies.append(cluster.sim.now - start)

    cluster.sim.run(cluster.sim.process(body()))
    mean = sum(latencies) / len(latencies)
    print("%-28s avg read = %6.1f us" % (label, mean * 1e6))
    return mean


def main():
    cluster = build_cluster(scheme="era-ce-cd", servers=6,
                            memory_per_server=GIB)
    client = cluster.add_client(window=1)
    source = KeyValueSource(seed=42)

    def load():
        for i in range(NUM_DOCS):
            yield from client.set(
                source.key(i), source.value(DOC_SIZE, with_data=True)
            )

    cluster.sim.run(cluster.sim.process(load()))
    print("loaded %d x %d KiB documents on 6 servers (RS(3,2))\n"
          % (NUM_DOCS, DOC_SIZE // 1024))

    healthy = measure_reads(cluster, client, source, "healthy")

    victim = "server-3"
    cluster.servers[victim].fail()
    print("\n*** %s crashed (memory lost) ***\n" % victim)
    degraded = measure_reads(cluster, client, source, "degraded (decoding)")

    repair = RepairManager(cluster, cluster.scheme)
    start = cluster.sim.now

    def do_repair():
        yield from repair.repair_server(
            victim, [source.key(i) for i in range(NUM_DOCS)]
        )

    cluster.sim.run(cluster.sim.process(do_repair()))
    print(
        "\nrepaired %d keys (%.1f MiB re-encoded) in %.1f ms of cluster time\n"
        % (
            repair.repaired_keys,
            repair.repaired_bytes / 1024 / 1024,
            (cluster.sim.now - start) * 1e3,
        )
    )
    repaired = measure_reads(cluster, client, source, "after repair")

    # the ultimate proof: two MORE failures and data still reads back
    cluster.fail_servers(["server-0", "server-1"])
    print("\n*** server-0 and server-1 also crashed ***\n")
    measure_reads(cluster, client, source, "three nodes down total")

    print(
        "\ndegraded cost: +%.0f%%; repair recovered %.0f%% of it"
        % (
            (degraded / healthy - 1) * 100,
            (degraded - repaired) / (degraded - healthy) * 100,
        )
    )


if __name__ == "__main__":
    main()
