#!/usr/bin/env python
"""Offline analytics scenario: Boldio burst buffer for Hadoop I/O.

Reproduces Section VI-D at example scale: a TestDFSIO-style job writes
through (a) Lustre directly — the HPC default — and (b) a Boldio burst
buffer whose Memcached layer is protected by either async replication or
online erasure coding, with asynchronous persistence to Lustre behind
the scenes.

Run:  python examples/boldio_burst_buffer.py
"""

from repro import build_cluster
from repro.boldio import (
    BoldioSystem,
    LustreFS,
    run_dfsio_boldio,
    run_dfsio_lustre,
)
from repro.harness.reporting import format_table
from repro.network import Fabric, profile_by_name
from repro.simulation import Simulator

MIB = 1024 * 1024
GIB = 1024 ** 3
FILE_SIZE = 32 * MIB  # per map task; 8 DN x 4 maps = 1 GiB per phase


def boldio_phase(scheme):
    cluster = build_cluster(
        profile="ri-qdr", scheme=scheme, servers=5, memory_per_server=2 * GIB
    )
    lustre = LustreFS(cluster.sim, cluster.fabric)
    system = BoldioSystem(cluster, lustre)
    write = run_dfsio_boldio(system, mode="write", file_size=FILE_SIZE)
    read = run_dfsio_boldio(system, mode="read", file_size=FILE_SIZE)

    # Let the asynchronous flusher finish, then show persistence.
    def drain():
        yield from system.drain_flushes()

    cluster.sim.run(cluster.sim.process(drain()))
    return write, read, system


def lustre_phase():
    sim = Simulator()
    fabric = Fabric(sim, profile_by_name("ri-qdr"))
    lustre = LustreFS(sim, fabric)
    write = run_dfsio_lustre(
        sim, fabric, lustre, mode="write", num_datanodes=12,
        file_size=FILE_SIZE,
    )
    read = run_dfsio_lustre(
        sim, fabric, lustre, mode="read", num_datanodes=12,
        file_size=FILE_SIZE,
    )
    return write, read


def main():
    rows = []
    write, read = lustre_phase()
    rows.append(["lustre-direct", write.throughput_mib, read.throughput_mib, "-"])

    for scheme in ("async-rep", "era-ce-cd", "era-se-cd"):
        write, read, system = boldio_phase(scheme)
        rows.append(
            [
                write.backend,
                write.throughput_mib,
                read.throughput_mib,
                "%.0f MiB" % (system.flushed_bytes / MIB),
            ]
        )

    print("TestDFSIO, 1 GiB job, RI-QDR cluster\n")
    print(
        format_table(
            ["backend", "write_MiB_s", "read_MiB_s", "persisted"], rows
        )
    )
    print(
        "\nThe burst buffer absorbs I/O at interconnect speed and drains"
        "\nto Lustre in the background; erasure coding keeps that speed"
        "\nwhile cutting the buffer's memory bill from 3x to 5/3x."
    )


if __name__ == "__main__":
    main()
