#!/usr/bin/env python
"""Scheme shootout: compare every resilience design on one workload.

Replays the paper's core comparison — Sync-Rep, Async-Rep, and the four
online-erasure-coding placements — on an identical 5-server cluster and
prints per-scheme Set/Get latency, the degraded-read penalty after two
node failures, and the memory each scheme consumed.

This is the motivating experiment of the paper in one script: erasure
coding matches replication's speed at ~55% of its memory.

Run:  python examples/scheme_shootout.py [value_size_bytes]
"""

import sys

from repro import build_cluster
from repro.harness.reporting import format_table
from repro.workloads.keys import KeyValueSource
from repro.workloads.microbench import (
    load_keys,
    run_get_benchmark,
    run_set_benchmark,
)

MIB = 1024 * 1024
SCHEMES = (
    "sync-rep",
    "async-rep",
    "era-ce-cd",
    "era-se-cd",
    "era-se-sd",
    "era-ce-sd",
)


def evaluate(scheme, value_size, num_ops=300):
    cluster = build_cluster(
        profile="ri-qdr", scheme=scheme, servers=5,
        memory_per_server=4 * 1024 * MIB,
    )
    blocking = scheme == "sync-rep"
    client = cluster.add_client(window=4)

    set_result = run_set_benchmark(
        cluster, client, num_ops=num_ops, value_size=value_size,
        blocking=blocking,
    )
    get_result = run_get_benchmark(
        cluster, client, num_ops=num_ops, value_size=value_size,
        blocking=blocking, preload=False,
    )

    # Degraded reads: crash two servers, measure gets again (window=1
    # shows the per-op recovery latency rather than pipelined averages).
    degraded_client = cluster.add_client(window=1)
    source = KeyValueSource(prefix="d")
    load_keys(cluster, degraded_client, num_ops, value_size, source)
    cluster.fail_servers(["server-3", "server-4"])
    degraded = run_get_benchmark(
        cluster, degraded_client, num_ops=num_ops, value_size=value_size,
        preload=False, source=source,
    )

    stored = cluster.total_stored_bytes
    return [
        scheme,
        set_result.avg_latency * 1e6,
        get_result.avg_latency * 1e6,
        degraded.avg_latency * 1e6,
        stored / MIB,
        cluster.scheme.tolerated_failures,
    ]


def main():
    value_size = int(sys.argv[1]) if len(sys.argv) > 1 else 256 * 1024
    print(
        "Comparing schemes: %d-byte values, 5 servers, RS(3,2) / Rep=3\n"
        % value_size
    )
    rows = [evaluate(scheme, value_size) for scheme in SCHEMES]
    print(
        format_table(
            ["scheme", "set_us", "get_us", "degraded_get_us", "stored_MiB",
             "tolerates"],
            rows,
        )
    )
    print(
        "\nReading guide: era-* match async-rep latencies while storing"
        "\n~5/3x the data instead of 3x; degraded reads pay the decode;"
        "\nera-se-sd pays an extra server hop on every degraded get."
    )


if __name__ == "__main__":
    main()
