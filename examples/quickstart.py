#!/usr/bin/env python
"""Quickstart: a resilient key-value store in ~40 lines.

Builds the paper's flagship configuration — a 5-server RDMA-Memcached
cluster with online Reed-Solomon RS(3,2) erasure coding, client-side
encode and decode (Era-CE-CD) — stores real data, kills the maximum
tolerable number of servers, and reads the data back intact.

Run:  python examples/quickstart.py
"""

from repro import Payload, build_cluster


def main():
    cluster = build_cluster(
        profile="ri-qdr",      # InfiniBand QDR + Westmere CPUs
        scheme="era-ce-cd",    # online erasure coding, client-side coding
        servers=5,
        codec="rs_van",        # Reed-Solomon (Vandermonde), like Jerasure
        k=3, m=2,              # 3 data + 2 parity chunks per value
    )
    client = cluster.add_client()
    document = b"The quick brown fox jumps over the lazy dog. " * 200

    def app():
        # Blocking API (memcached_set / memcached_get equivalents).
        ok = yield from client.set("article:42", Payload.from_bytes(document))
        print("stored: %s  (%.1f us)" % (ok, client.latencies("set")[-1] * 1e6))

        value = yield from client.get("article:42")
        print("read back intact: %s" % (value.data == document))

        # Crash two of the five servers — the worst RS(3,2) tolerates.
        placement = cluster.ring.placement("article:42", 5)
        cluster.fail_servers(placement[:2])  # includes the primary!
        print("killed servers: %s" % ", ".join(placement[:2]))

        # The degraded read gathers surviving chunks and decodes.
        value = yield from client.get("article:42")
        print(
            "degraded read intact: %s  (%.1f us)"
            % (value.data == document, client.latencies("get")[-1] * 1e6)
        )

    cluster.sim.process(app())
    cluster.run()
    print(
        "storage overhead: %.2fx (replication would need %.2fx)"
        % (cluster.scheme.storage_overhead, 3.0)
    )


if __name__ == "__main__":
    main()
