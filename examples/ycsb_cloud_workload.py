#!/usr/bin/env python
"""Online data-processing scenario: a YCSB-style multi-client cache tier.

Models the paper's Section VI-C use case — an application tier of many
concurrent clients hammering a 5-server Memcached cluster with a
Zipfian-skewed, update-heavy workload (YCSB-A) — and shows why online
erasure coding beats asynchronous replication once values exceed the
16 KB eager/rendezvous threshold: chunking drops each fragment back under
the threshold AND spreads the skewed load over all five servers.

Run:  python examples/ycsb_cloud_workload.py
"""

from repro import build_cluster
from repro.harness.reporting import format_table
from repro.workloads.ycsb import YCSBSpec, run_ycsb

KIB = 1024
GIB = 1024 ** 3


def run(scheme, profile, value_size):
    cluster = build_cluster(
        profile=profile, scheme=scheme, servers=5,
        memory_per_server=8 * GIB,
    )
    spec = YCSBSpec(
        "ycsb-a", read_proportion=0.5, update_proportion=0.5,
        record_count=10_000, ops_per_client=150, value_size=value_size,
    )
    result = run_ycsb(
        cluster, spec, num_clients=30, client_hosts=10, window=4
    )
    return result


def main():
    profile = "sdsc-comet"
    print("YCSB-A (50:50, Zipfian), 30 clients on 10 hosts, %s\n" % profile)

    rows = []
    for value_size in (4 * KIB, 32 * KIB):
        for scheme in ("no-rep", "async-rep", "era-ce-cd", "era-se-cd"):
            result = run(scheme, profile, value_size)
            rows.append(
                [
                    value_size // KIB,
                    scheme,
                    result.throughput,
                    result.read_latency.mean * 1e6,
                    result.write_latency.mean * 1e6,
                ]
            )
    print(
        format_table(
            ["size_KiB", "scheme", "tput_ops_s", "read_us", "write_us"],
            rows,
        )
    )
    print(
        "\nAt 32 KiB, era-ce-cd's 10.9 KiB chunks ride the low-latency"
        "\neager protocol while async-rep's 32 KiB replicas need the"
        "\nrendezvous handshake — the crossover the paper highlights."
    )


if __name__ == "__main__":
    main()
